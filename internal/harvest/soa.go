package harvest

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/par"
)

// SoAFleet is the struct-of-arrays fleet engine: the same battery state a
// Fleet keeps behind per-node Battery structs — charge, capacity, cutoff,
// costs, and the harvest/consumption/waste ledgers — stored as flat
// parallel slices, so the per-round hot loop walks contiguous memory with
// no pointer chasing and no interface call per node.
//
// SoAFleet implements Engine with behavior bit-identical to Fleet on every
// trace and policy: each battery mutation replicates the exact float
// operation sequence of the Battery methods, and the differential harness
// in internal/harvest/difftest pins the two engines against each other
// round by round. On top of the Engine surface it adds Sweep, which fuses
// the participation-decision, battery-update, and liveness passes into one
// sharded, zero-steady-state-allocation pass per round — the path the
// million-node demo and BenchmarkSoAFleetRound drive.
//
// Concurrency contract is Fleet's: per-node calls are safe across distinct
// nodes; whole-fleet calls (EndRound*, Sweep, statistics, Reset, Consumed)
// must not race with them.
type SoAFleet struct {
	chargeWh   []float64
	capacityWh []float64
	cutoffWh   []float64
	initialWh  []float64 // construction-time charge, for Reset
	trainWh    []float64 // per-round training cost of node i's device
	commWh     []float64 // per-round sharing cost of node i's device
	idleWh     float64
	trace      Trace
	rowTrace   RowTrace // non-nil when trace supports bulk row fill

	harvested    []float64 // cumulative stored harvest per node
	consumed     []float64 // cumulative train+idle+comm drain per node
	wasted       []float64 // per-node harvest that arrived with the battery full
	roundHarvest []float64 // scratch: last round's per-node stored harvest
	roundArrived []float64 // scratch: last round's per-node arrived harvest
	rowBuf       []float64 // scratch: RowTrace bulk fill for the current round

	shardStats []sweepShard // scratch: per-shard Sweep accumulators

	// roundsClosed counts EndRound/Sweep calls since construction or
	// Reset, mirroring Fleet.roundsClosed (Consumed/Reset guard).
	roundsClosed int
}

// NewSoAFleet builds the struct-of-arrays engine for the same fleet shape
// NewFleet accepts, from the same validated per-node derivation.
func NewSoAFleet(devices []energy.Device, w energy.Workload, trace Trace, opt Options) (*SoAFleet, error) {
	spec, err := buildFleetSpec(devices, w, trace, opt)
	if err != nil {
		return nil, err
	}
	n := len(devices)
	rt, _ := trace.(RowTrace)
	f := &SoAFleet{
		chargeWh:     make([]float64, n),
		capacityWh:   spec.capacityWh,
		cutoffWh:     spec.cutoffWh,
		initialWh:    spec.initialWh,
		trainWh:      spec.trainWh,
		commWh:       spec.commWh,
		idleWh:       spec.idleWh,
		trace:        trace,
		rowTrace:     rt,
		harvested:    make([]float64, n),
		consumed:     make([]float64, n),
		wasted:       make([]float64, n),
		roundHarvest: make([]float64, n),
		roundArrived: make([]float64, n),
		shardStats:   make([]sweepShard, (n+sweepShardSize-1)/sweepShardSize),
	}
	copy(f.chargeWh, spec.initialWh)
	if rt != nil {
		f.rowBuf = make([]float64, n)
	}
	return f, nil
}

// Consumed reports whether the fleet carries history a new run would
// silently inherit; see Fleet.Consumed.
func (f *SoAFleet) Consumed() bool { return f.roundsClosed > 0 || sum(f.consumed) > 0 }

// Reset rewinds the fleet to its construction state; see Fleet.Reset for
// the contract, including the TraceResetter requirement on stateful traces
// and the caveat about stateful policies bound to the fleet.
func (f *SoAFleet) Reset() error {
	switch tr := f.trace.(type) {
	case TraceResetter:
		tr.ResetTrace()
	case Constant, *Diurnal, *Replay: // stateless: nothing to rewind
	default:
		return fmt.Errorf("harvest: trace %s is not resettable (implement TraceResetter); build a fresh fleet instead", f.trace.Name())
	}
	copy(f.chargeWh, f.initialWh)
	for i := range f.harvested {
		f.harvested[i] = 0
		f.consumed[i] = 0
		f.wasted[i] = 0
		f.roundHarvest[i] = 0
		f.roundArrived[i] = 0
	}
	f.roundsClosed = 0
	return nil
}

// Nodes returns the fleet size.
func (f *SoAFleet) Nodes() int { return len(f.chargeWh) }

// SoC returns node i's state of charge in [0, 1].
func (f *SoAFleet) SoC(i int) float64 { return f.chargeWh[i] / f.capacityWh[i] }

// ChargeWh returns node i's charge level in Wh.
func (f *SoAFleet) ChargeWh(i int) float64 { return f.chargeWh[i] }

// Usable reports whether node i is above its brown-out cutoff.
func (f *SoAFleet) Usable(i int) bool { return f.chargeWh[i] > f.cutoffWh[i] }

// Live snapshots the per-node liveness mask; see Fleet.Live.
func (f *SoAFleet) Live() []bool {
	live := make([]bool, len(f.chargeWh))
	for i := range live {
		live[i] = f.chargeWh[i] > f.cutoffWh[i]
	}
	return live
}

// LiveCount returns how many nodes are above their brown-out cutoff.
func (f *SoAFleet) LiveCount() int { return len(f.chargeWh) - f.DepletedCount() }

// TrainCostWh returns the per-round training cost of node i's device.
func (f *SoAFleet) TrainCostWh(i int) float64 { return f.trainWh[i] }

// CapacityWh returns node i's battery capacity in Wh.
func (f *SoAFleet) CapacityWh(i int) float64 { return f.capacityWh[i] }

// CutoffWh returns node i's brown-out level in Wh.
func (f *SoAFleet) CutoffWh(i int) float64 { return f.cutoffWh[i] }

// OverheadWh returns the per-round non-training draw node i pays regardless
// of participation.
func (f *SoAFleet) OverheadWh(i int) float64 { return f.idleWh + f.commWh[i] }

// TimeToCharge solves node i's charge-arrival crossing under a constant
// net inflow rate (Wh per unit of virtual time) through the shared solver
// — the same math Battery.TimeToCharge applies, on the flat slices, so
// event-driven schedulers can run over either layout without drift.
func (f *SoAFleet) TimeToCharge(i int, targetWh, netRateWh float64) float64 {
	return timeToCharge(f.chargeWh[i], targetWh, f.capacityWh[i], netRateWh)
}

// TimeToCutoff solves node i's brown-out crossing under a constant load
// rate (Wh per unit of virtual time, positive = net outflow); see
// Battery.TimeToCutoff.
func (f *SoAFleet) TimeToCutoff(i int, loadRateWh float64) float64 {
	return timeToCutoff(f.chargeWh[i], f.cutoffWh[i], -loadRateWh)
}

// Context returns the direct-drive round context for round t; see
// Fleet.Context.
func (f *SoAFleet) Context(t int) core.RoundContext {
	return core.RoundContext{Round: t, Kind: core.RoundTrain, Battery: f}
}

// TryTrain atomically spends node i's training-round energy, reporting
// whether the battery could afford it — the exact Battery.TryConsume
// sequence on the flat slices. Safe for concurrent use across distinct
// nodes.
func (f *SoAFleet) TryTrain(i int) bool {
	wh := f.trainWh[i]
	if wh < 0 || f.chargeWh[i]-wh < f.cutoffWh[i] {
		return false
	}
	f.chargeWh[i] -= wh
	f.consumed[i] += wh
	return true
}

// EndRound closes round t; see Fleet.EndRound.
func (f *SoAFleet) EndRound(t int) []float64 { return f.endRound(t, nil) }

// EndRoundLive closes round t with dead nodes paying idle draw only; see
// Fleet.EndRoundLive.
func (f *SoAFleet) EndRoundLive(t int, live []bool) []float64 { return f.endRound(t, live) }

func (f *SoAFleet) endRound(t int, live []bool) []float64 {
	// Bulk-fill the round's harvest row first when the trace supports it:
	// RowTrace is single-goroutine by contract, and the sharded close-out
	// below then reads the row instead of calling the trace per node.
	row := f.fillRow(t)
	parallelFor(len(f.chargeWh), func(i int) {
		draw := f.idleWh
		if live == nil || live[i] {
			draw += f.commWh[i]
		}
		f.consumed[i] += f.drain(i, draw)
		var arrived float64
		if row != nil {
			arrived = row[i]
		} else {
			arrived = f.trace.HarvestWh(i, t)
		}
		stored := f.store(i, arrived)
		f.harvested[i] += stored
		f.wasted[i] += arrived - stored
		f.roundHarvest[i] = stored
		f.roundArrived[i] = arrived
	})
	f.roundsClosed++
	return f.roundHarvest
}

// fillRow fills rowBuf for round t through the RowTrace bulk path and
// returns it, or nil when the trace has no bulk path.
func (f *SoAFleet) fillRow(t int) []float64 {
	if f.rowTrace == nil {
		return nil
	}
	f.rowTrace.HarvestRowWh(t, f.rowBuf)
	return f.rowBuf
}

// drain removes up to wh from node i's charge clamped at empty — the exact
// Battery.Drain sequence — returning the amount actually drained.
func (f *SoAFleet) drain(i int, wh float64) float64 {
	if wh <= 0 {
		return 0
	}
	if wh > f.chargeWh[i] {
		wh = f.chargeWh[i]
	}
	f.chargeWh[i] -= wh
	return wh
}

// store harvests up to wh into node i clamped at capacity — the exact
// Battery.Harvest sequence — returning the amount actually stored.
func (f *SoAFleet) store(i int, wh float64) float64 {
	if wh <= 0 {
		return 0
	}
	stored := wh
	if room := f.capacityWh[i] - f.chargeWh[i]; stored > room {
		stored = room
	}
	f.chargeWh[i] += stored
	return stored
}

// RoundArrivedWh returns the per-node harvest that arrived during the last
// closed round; see Fleet.RoundArrivedWh.
func (f *SoAFleet) RoundArrivedWh() []float64 { return f.roundArrived }

// SoCStats computes mean/min SoC and the depleted count in one index-order
// pass, streaming every SoC through observe when non-nil; see
// Fleet.SoCStats.
func (f *SoAFleet) SoCStats(observe func(soc float64)) (mean, min float64, depleted int) {
	sum := 0.0
	min = f.chargeWh[0] / f.capacityWh[0]
	for i := range f.chargeWh {
		s := f.chargeWh[i] / f.capacityWh[i]
		sum += s
		if s < min {
			min = s
		}
		if !(f.chargeWh[i] > f.cutoffWh[i]) {
			depleted++
		}
		if observe != nil {
			observe(s)
		}
	}
	return sum / float64(len(f.chargeWh)), min, depleted
}

// SoCs returns a snapshot of every node's state of charge.
func (f *SoAFleet) SoCs() []float64 {
	out := make([]float64, len(f.chargeWh))
	for i := range out {
		out[i] = f.chargeWh[i] / f.capacityWh[i]
	}
	return out
}

// MeanSoC returns the fleet-average state of charge.
func (f *SoAFleet) MeanSoC() float64 {
	s := 0.0
	for i := range f.chargeWh {
		s += f.chargeWh[i] / f.capacityWh[i]
	}
	return s / float64(len(f.chargeWh))
}

// MinSoC returns the lowest state of charge in the fleet.
func (f *SoAFleet) MinSoC() float64 {
	min := f.chargeWh[0] / f.capacityWh[0]
	for i := 1; i < len(f.chargeWh); i++ {
		if s := f.chargeWh[i] / f.capacityWh[i]; s < min {
			min = s
		}
	}
	return min
}

// DepletedCount returns how many nodes sit at or below their cutoff.
func (f *SoAFleet) DepletedCount() int {
	n := 0
	for i := range f.chargeWh {
		if !(f.chargeWh[i] > f.cutoffWh[i]) {
			n++
		}
	}
	return n
}

// HarvestedWh returns the total energy stored from harvesting so far.
func (f *SoAFleet) HarvestedWh() float64 { return sum(f.harvested) }

// ConsumedWh returns the total energy drained (training + comm + idle).
func (f *SoAFleet) ConsumedWh() float64 { return sum(f.consumed) }

// WastedWh returns harvest energy that arrived while batteries were full.
func (f *SoAFleet) WastedWh() float64 { return sum(f.wasted) }

// NodeHarvestedWh returns node i's cumulative stored harvest.
func (f *SoAFleet) NodeHarvestedWh(i int) float64 { return f.harvested[i] }

// NodeConsumedWh returns node i's cumulative drain.
func (f *SoAFleet) NodeConsumedWh(i int) float64 { return f.consumed[i] }

// TraceName reports the attached trace's identity for logs and tables.
func (f *SoAFleet) TraceName() string { return f.trace.Name() }

// SweepStats summarizes one fused Sweep round. All counts are exact and
// independent of GOMAXPROCS. SoC distribution statistics are deliberately
// not accumulated here — the per-node division they cost would dominate
// the fused loop; call SoCStats (streaming into an obs sketch if wanted)
// at whatever cadence the caller actually samples them.
type SweepStats struct {
	// Trained counts nodes whose decide returned true and whose battery
	// could afford the round.
	Trained int
	// Live and Depleted split the fleet by post-round cutoff state.
	Live     int
	Depleted int
}

// sweepShardSize fixes the Sweep shard width independently of GOMAXPROCS:
// per-shard partial counts merged in shard index order give the same
// result whether the shards ran on one worker or eight.
const sweepShardSize = 4096

// sweepShard is one shard's statistics accumulator; shards only ever write
// their own slot.
type sweepShard struct {
	trained  int
	depleted int
}

// Sweep fuses one whole round into a single pass per node: the
// participation decision, the training drain, the idle+communication draw,
// the harvest with its ledger updates, and the post-round liveness count.
// It is exactly equivalent to
//
//	for i := range nodes { if decide(i, SoC(i)) { TryTrain(i) } }
//	EndRound(t)
//	_, _, depleted := SoCStats(nil)
//
// with per-node charge, ledgers, and scratch slices bit-identical to that
// three-pass sequence. Every node pays its communication draw (EndRound
// semantics; drive EndRoundLive directly for dead-radio accounting).
//
// decide sees node i's pre-round state of charge and returns whether the
// node attempts to train; it must be safe for concurrent calls on distinct
// nodes and is called exactly once per node. A nil decide sweeps a
// no-training round. The pass runs serially below parallelMinNodes nodes
// and shards across workers above it — in fixed sweepShardSize ranges with
// stats merged in shard order, so results are independent of GOMAXPROCS.
// The steady state allocates nothing: all scratch (harvest row, shard
// accumulators) is preallocated at construction.
func (f *SoAFleet) Sweep(t int, decide func(i int, soc float64) bool) SweepStats {
	n := len(f.chargeWh)
	row := f.fillRow(t)
	shards := (n + sweepShardSize - 1) / sweepShardSize
	if n < parallelMinNodes || shards < 2 {
		for s := 0; s < shards; s++ {
			f.sweepShardRange(t, s, row, decide)
		}
	} else {
		par.For(shards, 1, func(s int) {
			f.sweepShardRange(t, s, row, decide)
		})
	}
	return f.mergeSweep(shards)
}

// SweepThreshold is Sweep specialized to the paper's SoC-threshold
// participation rule: node i attempts to train iff its pre-round state of
// charge exceeds minSoC. It is bit-identical to
//
//	Sweep(t, func(i int, soc float64) bool { return soc > minSoC })
//
// but keeps the predicate inline in the fused loop instead of behind an
// indirect call per node, which is worth ~20% of the whole sweep at
// million-node scale.
func (f *SoAFleet) SweepThreshold(t int, minSoC float64) SweepStats {
	n := len(f.chargeWh)
	row := f.fillRow(t)
	shards := (n + sweepShardSize - 1) / sweepShardSize
	if n < parallelMinNodes || shards < 2 {
		for s := 0; s < shards; s++ {
			f.sweepThresholdShardRange(t, s, row, minSoC)
		}
	} else {
		par.For(shards, 1, func(s int) {
			f.sweepThresholdShardRange(t, s, row, minSoC)
		})
	}
	return f.mergeSweep(shards)
}

// mergeSweep closes the round and merges the per-shard counts in shard
// index order, so totals are independent of how the shards were scheduled.
func (f *SoAFleet) mergeSweep(shards int) SweepStats {
	f.roundsClosed++
	var stats SweepStats
	for s := 0; s < shards; s++ {
		stats.Trained += f.shardStats[s].trained
		stats.Depleted += f.shardStats[s].depleted
	}
	stats.Live = len(f.chargeWh) - stats.Depleted
	return stats
}

// sweepShardRange runs the fused per-node pass over shard s's node range
// and records the shard's partial statistics in its own slot.
func (f *SoAFleet) sweepShardRange(t int, s int, row []float64, decide func(i int, soc float64) bool) {
	lo := s * sweepShardSize
	hi := lo + sweepShardSize
	if n := len(f.chargeWh); hi > n {
		hi = n
	}
	// Subslice every array to the shard window so all loop indexing is
	// provably in bounds (bounds-check elimination).
	n := hi - lo
	charge := f.chargeWh[lo:hi]
	capacity := f.capacityWh[lo:hi]
	cutoff := f.cutoffWh[lo:hi]
	train := f.trainWh[lo:hi]
	comm := f.commWh[lo:hi]
	consumed := f.consumed[lo:hi]
	harvested := f.harvested[lo:hi]
	wasted := f.wasted[lo:hi]
	roundHarvest := f.roundHarvest[lo:hi]
	roundArrived := f.roundArrived[lo:hi]
	if row != nil {
		row = row[lo:hi]
	}
	idle := f.idleWh
	var sh sweepShard
	for j := 0; j < n; j++ {
		c := charge[j]
		// Participation decision + training drain (Battery.TryConsume).
		if decide != nil && decide(lo+j, c/capacity[j]) {
			if wh := train[j]; wh >= 0 && c-wh >= cutoff[j] {
				c -= wh
				consumed[j] += wh
				sh.trained++
			}
		}
		// Idle + communication draw (Battery.Drain, clamped at empty).
		if draw := idle + comm[j]; draw > 0 {
			if draw > c {
				draw = c
			}
			c -= draw
			consumed[j] += draw
		}
		// Harvest (Battery.Harvest, clamped at capacity) + ledgers.
		var arrived float64
		if row != nil {
			arrived = row[j]
		} else {
			arrived = f.trace.HarvestWh(lo+j, t)
		}
		stored := 0.0
		if arrived > 0 {
			stored = arrived
			if room := capacity[j] - c; stored > room {
				stored = room
			}
			c += stored
		}
		charge[j] = c
		// Guarded read-modify-writes: adding 0.0 is a bitwise no-op on the
		// non-negative ledgers, and skipping it avoids two loads and stores
		// per idle node.
		if stored != 0 {
			harvested[j] += stored
		}
		if d := arrived - stored; d != 0 {
			wasted[j] += d
		}
		roundHarvest[j] = stored
		roundArrived[j] = arrived
		// Post-round liveness.
		if !(c > cutoff[j]) {
			sh.depleted++
		}
	}
	f.shardStats[s] = sh
}

// sweepThresholdShardRange is sweepShardRange with the participation
// predicate inlined as soc > minSoC. Every float operation and its order
// are identical to the generic loop — TestSweepThresholdMatchesClosure
// pins the two bit-equal — so any change here must be mirrored there.
func (f *SoAFleet) sweepThresholdShardRange(t int, s int, row []float64, minSoC float64) {
	lo := s * sweepShardSize
	hi := lo + sweepShardSize
	if n := len(f.chargeWh); hi > n {
		hi = n
	}
	n := hi - lo
	charge := f.chargeWh[lo:hi]
	capacity := f.capacityWh[lo:hi]
	cutoff := f.cutoffWh[lo:hi]
	train := f.trainWh[lo:hi]
	comm := f.commWh[lo:hi]
	consumed := f.consumed[lo:hi]
	harvested := f.harvested[lo:hi]
	wasted := f.wasted[lo:hi]
	roundHarvest := f.roundHarvest[lo:hi]
	roundArrived := f.roundArrived[lo:hi]
	if row != nil {
		row = row[lo:hi]
	}
	idle := f.idleWh
	var sh sweepShard
	for j := 0; j < n; j++ {
		c := charge[j]
		// Participation decision + training drain (Battery.TryConsume).
		if c/capacity[j] > minSoC {
			if wh := train[j]; wh >= 0 && c-wh >= cutoff[j] {
				c -= wh
				consumed[j] += wh
				sh.trained++
			}
		}
		// Idle + communication draw (Battery.Drain, clamped at empty).
		if draw := idle + comm[j]; draw > 0 {
			if draw > c {
				draw = c
			}
			c -= draw
			consumed[j] += draw
		}
		// Harvest (Battery.Harvest, clamped at capacity) + ledgers.
		var arrived float64
		if row != nil {
			arrived = row[j]
		} else {
			arrived = f.trace.HarvestWh(lo+j, t)
		}
		stored := 0.0
		if arrived > 0 {
			stored = arrived
			if room := capacity[j] - c; stored > room {
				stored = room
			}
			c += stored
		}
		charge[j] = c
		if stored != 0 {
			harvested[j] += stored
		}
		if d := arrived - stored; d != 0 {
			wasted[j] += d
		}
		roundHarvest[j] = stored
		roundArrived[j] = arrived
		// Post-round liveness.
		if !(c > cutoff[j]) {
			sh.depleted++
		}
	}
	f.shardStats[s] = sh
}
