package harvest

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/energy"
)

// Options tunes a Fleet. The zero value is completed with sensible defaults
// by NewFleet.
type Options struct {
	// CapacityRounds overrides each battery's capacity to this many
	// training rounds' worth of energy on its own device, instead of the
	// device profile's full battery. A phone's 17 Wh battery spans
	// thousands of scaled training rounds, so absolute state of charge
	// barely moves; harvesting-class hardware runs off supercaps holding a
	// handful of rounds. Set this to put SoC — and the SoC-driven policies
	// — on a meaningful scale. 0 keeps the device battery.
	CapacityRounds float64
	// InitialRounds sets every node's initial charge to this many training
	// rounds' worth of energy on its own device (clamped to capacity). It
	// takes precedence over InitialSoC and is the natural unit for scaled
	// simulations where full smartphone batteries would never bind.
	InitialRounds float64
	// InitialSoC is the initial state of charge as a fraction of capacity
	// in [0, 1]. Ignored when InitialRounds > 0. The zero value means
	// "unset" and defaults to 1 (full); set StartEmpty for batteries that
	// begin the mission drained.
	InitialSoC float64
	// StartEmpty starts every battery at zero charge (a wake-with-the-sun
	// deployment), overriding InitialSoC and InitialRounds.
	StartEmpty bool
	// CutoffSoC is the brown-out level as a fraction of capacity.
	// Default 0 (batteries usable down to empty).
	CutoffSoC float64
	// IdleWh is the always-on per-round draw every node pays regardless of
	// participation. Default 0.
	IdleWh float64
	// CommFrac prices one sharing/aggregation round as this fraction of the
	// node's training-round cost. Default energy.CommShareOfTraining, the
	// paper's measured ~1/216 ratio. Set negative to disable comm draw.
	CommFrac float64
}

func (o Options) defaults() Options {
	if o.InitialRounds <= 0 && o.InitialSoC == 0 {
		o.InitialSoC = 1
	}
	if o.CommFrac == 0 {
		o.CommFrac = energy.CommShareOfTraining
	}
	if o.CommFrac < 0 {
		o.CommFrac = 0
	}
	return o
}

// Fleet binds one Battery per node to its device's per-round costs and a
// harvest Trace, and advances the whole population round by round.
//
// Within a round the engine (internal/sim) drives the fleet in two steps:
// policies call TryTrain(i) for nodes that decide to train, then EndRound
// pays every node's idle and communication draw and harvests ambient
// energy. All mutable state is strictly per-node, so TryTrain may be called
// concurrently for distinct nodes; EndRound and the whole-fleet statistics
// must not race with per-node calls. EndRound itself shards the close-out
// across GOMAXPROCS workers for large fleets — bit-identical to the serial
// path because no cross-node state exists.
type Fleet struct {
	batteries []Battery
	initialWh []float64 // construction-time charge, for Reset
	trainWh   []float64 // per-round training cost of node i's device
	commWh    []float64 // per-round sharing cost of node i's device
	idleWh    float64
	trace     Trace

	harvested    []float64 // cumulative stored harvest per node
	consumed     []float64 // cumulative train+idle+comm drain per node
	wasted       []float64 // per-node harvest that arrived with the battery full
	roundHarvest []float64 // scratch: last EndRound's per-node stored harvest
	roundArrived []float64 // scratch: last EndRound's per-node arrived harvest

	// roundsClosed counts EndRound calls since construction or Reset. A
	// fleet with closed rounds has drained batteries, advanced any stateful
	// trace, and accumulated ledgers; sim.Run refuses such a fleet so state
	// can never leak silently between runs (Consumed/Reset).
	roundsClosed int
}

// NewFleet builds a fleet of len(devices) nodes. Each node's training cost
// comes from its device under workload w (Eq. 2), its battery capacity from
// the device profile, and its recharge from trace.
func NewFleet(devices []energy.Device, w energy.Workload, trace Trace, opt Options) (*Fleet, error) {
	spec, err := buildFleetSpec(devices, w, trace, opt)
	if err != nil {
		return nil, err
	}
	n := len(devices)
	f := &Fleet{
		batteries:    make([]Battery, n),
		initialWh:    spec.initialWh, // post-clamp, so Reset restores exactly
		trainWh:      spec.trainWh,
		commWh:       spec.commWh,
		idleWh:       spec.idleWh,
		trace:        trace,
		harvested:    make([]float64, n),
		consumed:     make([]float64, n),
		wasted:       make([]float64, n),
		roundHarvest: make([]float64, n),
		roundArrived: make([]float64, n),
	}
	for i := range f.batteries {
		f.batteries[i] = Battery{
			CapacityWh: spec.capacityWh[i],
			CutoffWh:   spec.cutoffWh[i],
			chargeWh:   spec.initialWh[i],
		}
	}
	return f, nil
}

// Consumed reports whether the fleet carries history a new run would
// silently inherit: a closed round (drained batteries, advanced trace
// state, idle/comm ledgers) or any training drain — TryTrain spends
// battery charge even when no round was ever closed. sim.Run rejects a
// consumed fleet; call Reset (or build a fresh fleet) between runs. Like
// the other whole-fleet statistics it must not race with per-node calls.
func (f *Fleet) Consumed() bool { return f.roundsClosed > 0 || sum(f.consumed) > 0 }

// Reset rewinds the fleet to its construction state: every battery back to
// its initial charge, all harvest/consumption/waste ledgers zeroed, and the
// trace rewound when it is stateful (TraceResetter). After Reset the fleet
// reproduces its first run bit-for-bit — the cheap fresh-state path for
// grid searches that sweep many runs over one fleet shape.
//
// Reset covers fleet state only. A stateful policy bound to the fleet
// (SoCHysteresis keeps per-node dormancy) must be rebuilt or Reset
// alongside, or the second run starts with the first run's dormancy.
//
// Reset fails on a stateful trace that does not implement TraceResetter:
// rewinding the batteries but not the chain state would silently splice two
// trajectories together. MarkovOnOff implements it; Constant, Diurnal, and
// Replay are stateless (pure functions of node and round) and need no
// rewind.
func (f *Fleet) Reset() error {
	switch tr := f.trace.(type) {
	case TraceResetter:
		tr.ResetTrace()
	case Constant, *Diurnal, *Replay: // stateless: nothing to rewind
	default:
		return fmt.Errorf("harvest: trace %s is not resettable (implement TraceResetter); build a fresh fleet instead", f.trace.Name())
	}
	for i := range f.batteries {
		f.batteries[i].chargeWh = f.initialWh[i]
		f.harvested[i] = 0
		f.consumed[i] = 0
		f.wasted[i] = 0
		f.roundHarvest[i] = 0
		f.roundArrived[i] = 0
	}
	f.roundsClosed = 0
	return nil
}

// Nodes returns the fleet size.
func (f *Fleet) Nodes() int { return len(f.batteries) }

// SoC returns node i's state of charge in [0, 1].
func (f *Fleet) SoC(i int) float64 { return f.batteries[i].SoC() }

// ChargeWh returns node i's charge level in Wh.
func (f *Fleet) ChargeWh(i int) float64 { return f.batteries[i].ChargeWh() }

// Usable reports whether node i is above its brown-out cutoff.
func (f *Fleet) Usable(i int) bool { return f.batteries[i].Usable() }

// Live snapshots the fleet's live set: live[i] reports that node i is above
// its brown-out cutoff and can power its radio this round. The simulation
// engine takes this snapshot at the start of every round and feeds it to
// graph.RenormalizeLive and the transport's dead-node wrapper, so liveness
// is decided once per round from battery state, never mid-phase.
func (f *Fleet) Live() []bool {
	live := make([]bool, len(f.batteries))
	for i := range f.batteries {
		live[i] = f.batteries[i].Usable()
	}
	return live
}

// LiveCount returns how many nodes are above their brown-out cutoff.
func (f *Fleet) LiveCount() int { return len(f.batteries) - f.DepletedCount() }

// TrainCostWh returns the per-round training cost of node i's device.
func (f *Fleet) TrainCostWh(i int) float64 { return f.trainWh[i] }

// CapacityWh returns node i's battery capacity in Wh.
func (f *Fleet) CapacityWh(i int) float64 { return f.batteries[i].CapacityWh }

// CutoffWh returns node i's brown-out level in Wh.
func (f *Fleet) CutoffWh(i int) float64 { return f.batteries[i].CutoffWh }

// OverheadWh returns the per-round non-training draw node i pays regardless
// of participation: the always-on idle draw plus its sharing cost.
func (f *Fleet) OverheadWh(i int) float64 { return f.idleWh + f.commWh[i] }

// A Fleet is the battery state charge-aware policies see through the round
// context.
var _ core.BatteryView = (*Fleet)(nil)

// Context returns the direct-drive round context for round t: an all-train
// round backed by this fleet, with no schedule or forecast attached. The
// sim engine builds richer contexts itself; this is for tests and tools
// that exercise policies against a fleet directly.
func (f *Fleet) Context(t int) core.RoundContext {
	return core.RoundContext{Round: t, Kind: core.RoundTrain, Battery: f}
}

// TryTrain atomically spends node i's training-round energy, reporting
// whether the battery could afford it. Policies call this after deciding to
// train; it is the only training drain path. Safe for concurrent use across
// distinct nodes.
func (f *Fleet) TryTrain(i int) bool {
	if !f.batteries[i].TryConsume(f.trainWh[i]) {
		return false
	}
	f.consumed[i] += f.trainWh[i]
	return true
}

// EndRound closes round t: every node pays its communication and idle draw
// (clamped at empty — dead nodes cannot pay), then harvests trace energy
// into its battery. It returns the per-node energy actually stored this
// round; the slice is reused by the next EndRound call.
func (f *Fleet) EndRound(t int) []float64 { return f.endRound(t, nil) }

// EndRoundLive closes round t like EndRound, but nodes marked dead in the
// liveness mask pay only their idle draw: a browned-out radio sends and
// receives nothing, so it owes no communication energy. This is the
// battery-side counterpart of dropping the node's edges for the round; a
// nil mask recovers EndRound exactly.
func (f *Fleet) EndRoundLive(t int, live []bool) []float64 { return f.endRound(t, live) }

func (f *Fleet) endRound(t int, live []bool) []float64 {
	// The round close-out is sharded across workers for big fleets: every
	// write below is to node-i state only (battery, ledgers, scratch), and
	// Trace implementations are documented race-free across distinct nodes,
	// so the parallel path is bit-identical to the serial one.
	parallelFor(len(f.batteries), func(i int) {
		b := &f.batteries[i]
		draw := f.idleWh
		if live == nil || live[i] {
			draw += f.commWh[i]
		}
		f.consumed[i] += b.Drain(draw)
		arrived := f.trace.HarvestWh(i, t)
		stored := b.Harvest(arrived)
		f.harvested[i] += stored
		f.wasted[i] += arrived - stored
		f.roundHarvest[i] = stored
		f.roundArrived[i] = arrived
	})
	// Written outside the parallel region: endRound itself is whole-fleet
	// and documented not to race with per-node calls.
	f.roundsClosed++
	return f.roundHarvest
}

// RoundArrivedWh returns the per-node energy that arrived during the last
// closed round — stored plus wasted, before the battery's capacity clamp.
// This is what forecasters observe (ForecastObserver): a prediction targets
// what the source delivers, not what the battery happened to have room for.
// The slice is reused by the next EndRound call.
func (f *Fleet) RoundArrivedWh() []float64 { return f.roundArrived }

// SoCStats computes the fleet's whole-population charge statistics in one
// pass: mean and minimum state of charge plus the depleted count, visiting
// nodes in index order so results are bit-identical to the separate
// MeanSoC/MinSoC/DepletedCount sweeps. When observe is non-nil it receives
// every node's SoC in the same pass — the hook the engine points at a
// streaming quantile sketch (internal/obs) so SoC percentiles exist
// without materializing a per-node slice. Like the other whole-fleet
// statistics it must not race with per-node calls.
func (f *Fleet) SoCStats(observe func(soc float64)) (mean, min float64, depleted int) {
	sum := 0.0
	min = f.batteries[0].SoC()
	for i := range f.batteries {
		s := f.batteries[i].SoC()
		sum += s
		if s < min {
			min = s
		}
		if !f.batteries[i].Usable() {
			depleted++
		}
		if observe != nil {
			observe(s)
		}
	}
	return sum / float64(len(f.batteries)), min, depleted
}

// SoCs returns a snapshot of every node's state of charge.
func (f *Fleet) SoCs() []float64 {
	out := make([]float64, len(f.batteries))
	for i := range f.batteries {
		out[i] = f.batteries[i].SoC()
	}
	return out
}

// MeanSoC returns the fleet-average state of charge.
func (f *Fleet) MeanSoC() float64 {
	s := 0.0
	for i := range f.batteries {
		s += f.batteries[i].SoC()
	}
	return s / float64(len(f.batteries))
}

// MinSoC returns the lowest state of charge in the fleet.
func (f *Fleet) MinSoC() float64 {
	min := f.batteries[0].SoC()
	for i := 1; i < len(f.batteries); i++ {
		if s := f.batteries[i].SoC(); s < min {
			min = s
		}
	}
	return min
}

// DepletedCount returns how many nodes sit at or below their cutoff.
func (f *Fleet) DepletedCount() int {
	n := 0
	for i := range f.batteries {
		if !f.batteries[i].Usable() {
			n++
		}
	}
	return n
}

// HarvestedWh returns the total energy stored from harvesting so far.
func (f *Fleet) HarvestedWh() float64 { return sum(f.harvested) }

// ConsumedWh returns the total energy drained (training + comm + idle).
func (f *Fleet) ConsumedWh() float64 { return sum(f.consumed) }

// WastedWh returns harvest energy that arrived while batteries were full.
func (f *Fleet) WastedWh() float64 { return sum(f.wasted) }

// NodeHarvestedWh returns node i's cumulative stored harvest.
func (f *Fleet) NodeHarvestedWh(i int) float64 { return f.harvested[i] }

// NodeConsumedWh returns node i's cumulative drain.
func (f *Fleet) NodeConsumedWh(i int) float64 { return f.consumed[i] }

// TraceName reports the attached trace's identity for logs and tables.
func (f *Fleet) TraceName() string { return f.trace.Name() }

func sum(xs []float64) float64 {
	t := 0.0
	for _, v := range xs {
		t += v
	}
	return t
}
