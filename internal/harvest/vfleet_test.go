package harvest

import (
	"math"
	"testing"

	"repro/internal/energy"
)

// vfleetFixture builds a small VFleet over a constant trace with simple
// geometry for hand-checkable arithmetic.
func vfleetFixture(t *testing.T, trace Trace, opt Options, roundSec float64) *VFleet {
	t.Helper()
	devs := energy.AssignDevices(4, energy.Devices())
	f, err := NewVFleet(devs, energy.CIFAR10Workload(), trace, opt, roundSec)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewVFleetValidates(t *testing.T) {
	devs := energy.AssignDevices(2, energy.Devices())
	for _, rs := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewVFleet(devs, energy.CIFAR10Workload(), Constant{Wh: 1}, Options{}, rs); err == nil {
			t.Fatalf("round seconds %v accepted", rs)
		}
	}
	if _, err := NewVFleet(devs, energy.CIFAR10Workload(), Constant{Wh: 1}, Options{CutoffSoC: 2}, 10); err == nil {
		t.Fatal("bad fleet options accepted")
	}
}

func TestVFleetConservation(t *testing.T) {
	d, err := NewDiurnal(0.02, 6, LongitudePhase(4))
	if err != nil {
		t.Fatal(err)
	}
	f := vfleetFixture(t, d, Options{CapacityRounds: 4, InitialSoC: 0.5, CutoffSoC: 0.05, IdleWh: 0.001}, 10)
	start := f.TotalChargeWh()
	// Mix lump consumption with continuous advancement.
	for i := 0; i < f.Nodes(); i++ {
		f.AdvanceNode(i, 7.5)
		f.TrySync(i)
		if f.TryTrain(i) {
			f.TrainStep(i, 13+float64(i))
		}
	}
	f.AdvanceAll(95)
	got := f.TotalChargeWh()
	want := start + f.HarvestedWh() - f.ConsumedWh()
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("conservation broken: charge %v, start+H-C %v", got, want)
	}
	if f.WastedWh() < 0 {
		t.Fatalf("negative waste %v", f.WastedWh())
	}
}

func TestVFleetTrainStepBrownsOutMidStep(t *testing.T) {
	// Zero harvest: the battery has cutoff + half a step of headroom at
	// admission... so admission must fail. Give it exactly enough for one
	// step, then drain continuously: the NEXT step browns out mid-flight.
	f := vfleetFixture(t, Constant{Wh: 0}, Options{CapacityRounds: 8, InitialSoC: 1, CutoffSoC: 0.5}, 10)
	i := 0
	// Usable headroom: capacity − cutoff = 8·cost − 4·cost = 4·cost.
	for step := 0; step < 4; step++ {
		if !f.TryTrain(i) {
			t.Fatalf("step %d should be affordable", step)
		}
		end := f.Clock(i) + 5
		stop, browned := f.TrainStep(i, end)
		if browned || stop != end {
			t.Fatalf("step %d browned early at %v", step, stop)
		}
	}
	if f.TryTrain(i) {
		t.Fatal("fifth step admitted below cutoff headroom")
	}
}

func TestVFleetTrainStepAbortsAtCrossing(t *testing.T) {
	// Idle draw pushes the battery to cutoff mid-step: the step must abort
	// at the crossing with partial energy charged.
	f := vfleetFixture(t, Constant{Wh: 0}, Options{CapacityRounds: 8, InitialSoC: 1, CutoffSoC: 0.5, IdleWh: 4}, 10)
	// Per-second idle rate = 4/10 = 0.4 Wh/s; per-second train load with a
	// 10s step adds cost/10. Headroom is 4·cost Wh.
	i := 0
	cost := f.TrainCostWh(i)
	if !f.TryTrain(i) {
		t.Fatal("first step should be admitted")
	}
	loadW := 0.4 + cost/10
	wantCross := 4 * cost / loadW
	chargeBefore := f.ChargeWh(i)
	stop, browned := f.TrainStep(i, 10)
	if wantCross < 10 {
		if !browned {
			t.Fatalf("step should brown out (crossing at %v)", wantCross)
		}
		if math.Abs(stop-wantCross) > 1e-9 {
			t.Fatalf("crossing at %v, want %v", stop, wantCross)
		}
		// Partial energy stays spent: charge dropped to the cutoff.
		if math.Abs(f.ChargeWh(i)-f.CutoffWh(i)) > 1e-9 {
			t.Fatalf("charge %v, want cutoff %v", f.ChargeWh(i), f.CutoffWh(i))
		}
		if f.ChargeWh(i) >= chargeBefore {
			t.Fatal("no energy charged for aborted step")
		}
		if f.Usable(i) {
			t.Fatal("node still usable at cutoff")
		}
	} else {
		if browned {
			t.Fatalf("unexpected brown-out at %v", stop)
		}
	}
	if f.Pending(i) {
		t.Fatal("pending flag survived TrainStep")
	}
}

func TestVFleetScanAffordWake(t *testing.T) {
	// Start empty over a constant trace: the wake crossing is exactly when
	// net inflow fills cutoff + cost.
	f := vfleetFixture(t, Constant{Wh: 0.05}, Options{CapacityRounds: 8, StartEmpty: true, CutoffSoC: 0.1, IdleWh: 0.01}, 10)
	i := 0
	cost := f.TrainCostWh(i)
	target := f.CutoffWh(i) + cost
	netW := (0.05 - 0.01) / 10 // Wh per second
	want := target / netW
	wake, brown := f.ScanAfford(i, cost, 1e7)
	if math.Abs(wake-want) > 1e-6 {
		t.Fatalf("wake at %v, want %v", wake, want)
	}
	if !math.IsInf(brown, 1) {
		t.Fatalf("rising trajectory reported brown-out at %v", brown)
	}
	// Deadline short of the crossing: no wake.
	wake, _ = f.ScanAfford(i, cost, want/2)
	if !math.IsInf(wake, 1) {
		t.Fatalf("wake %v inside short deadline, want +Inf", wake)
	}
	// The scan is pure: state untouched.
	if f.Clock(i) != 0 || f.ChargeWh(i) != 0 {
		t.Fatal("ScanAfford mutated battery state")
	}
}

func TestVFleetScanAffordBrown(t *testing.T) {
	// Falling trajectory: idle outpaces harvest, so the scan reports the
	// cutoff crossing and never an affordable wake.
	f := vfleetFixture(t, Constant{Wh: 0.01}, Options{CapacityRounds: 4, InitialSoC: 0.5, CutoffSoC: 0.25, IdleWh: 0.05}, 10)
	i := 0
	netOutW := (0.05 - 0.01) / 10
	want := (f.ChargeWh(i) - f.CutoffWh(i)) / netOutW
	wake, brown := f.ScanAfford(i, 100*f.CapacityWh(i), 1e7)
	if !math.IsInf(wake, 1) {
		t.Fatalf("unaffordable target woke at %v", wake)
	}
	if math.Abs(brown-want) > 1e-6 {
		t.Fatalf("brown-out at %v, want %v", brown, want)
	}
}

func TestVFleetScanAffordMatchesRun(t *testing.T) {
	// The scan must predict exactly what run realizes on a diurnal trace
	// crossing several round boundaries.
	d, err := NewDiurnal(0.03, 4, LongitudePhase(4))
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *VFleet {
		return vfleetFixture(t, d, Options{CapacityRounds: 6, StartEmpty: true, CutoffSoC: 0.1, IdleWh: 0.002}, 5)
	}
	f := mk()
	i := 1
	cost := f.TrainCostWh(i)
	wake, _ := f.ScanAfford(i, cost, 1e6)
	if math.IsInf(wake, 1) {
		t.Skip("trace never affords a step in the scan window")
	}
	g := mk()
	g.AdvanceNode(i, wake)
	if g.ChargeWh(i)-cost < g.CutoffWh(i)-1e-9 {
		t.Fatalf("advanced to wake %v but charge %v cannot afford cost %v above cutoff %v",
			wake, g.ChargeWh(i), cost, g.CutoffWh(i))
	}
	if !g.TryTrain(i) {
		t.Fatal("TryTrain refused at the predicted wake time")
	}
}

func TestVFleetPendingLifecycle(t *testing.T) {
	f := vfleetFixture(t, Constant{Wh: 0}, Options{CapacityRounds: 8, InitialSoC: 1}, 10)
	i := 0
	if f.Pending(i) {
		t.Fatal("fresh fleet has pending step")
	}
	if !f.TryTrain(i) {
		t.Fatal("admission failed")
	}
	if !f.Pending(i) || !f.TryTrain(i) {
		t.Fatal("re-admission of pending step failed")
	}
	charge := f.ChargeWh(i)
	f.ClearPending(i)
	if f.Pending(i) || f.ChargeWh(i) != charge {
		t.Fatal("ClearPending leaked state or energy")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("TrainStep without admission did not panic")
		}
	}()
	f.TrainStep(i, 10)
}

func TestVFleetAdvanceAllSkipsFutureClocks(t *testing.T) {
	f := vfleetFixture(t, Constant{Wh: 0.01}, Options{CapacityRounds: 8, InitialSoC: 0.5}, 10)
	// Node 0 realized a step eagerly out to t=50; AdvanceAll(30) must not
	// rewind or double-advance it.
	f.AdvanceNode(0, 50)
	c0 := f.ChargeWh(0)
	f.AdvanceAll(30)
	if f.Clock(0) != 50 || f.ChargeWh(0) != c0 {
		t.Fatal("AdvanceAll touched a node with a future clock")
	}
	for i := 1; i < f.Nodes(); i++ {
		if f.Clock(i) != 30 {
			t.Fatalf("node %d clock %v, want 30", i, f.Clock(i))
		}
	}
}

func TestVFleetMatchesFleetOnRoundBoundaries(t *testing.T) {
	// Advancing a VFleet round by round with no training reproduces the
	// synchronous Fleet's idle trajectory: same per-round drain-then-store
	// lump order, same trace energy per round (Diurnal's continuous integral
	// differs from the sampled rate, so use Constant where both agree).
	trace := Constant{Wh: 0.004}
	opt := Options{CapacityRounds: 6, InitialSoC: 0.5, CutoffSoC: 0.1, IdleWh: 0.002}
	devs := energy.AssignDevices(4, energy.Devices())
	sync, err := NewFleet(devs, energy.CIFAR10Workload(), trace, opt)
	if err != nil {
		t.Fatal(err)
	}
	vf, err := NewVFleet(devs, energy.CIFAR10Workload(), trace, opt, 10)
	if err != nil {
		t.Fatal(err)
	}
	dead := make([]bool, 4) // nobody live: idle draw only, no comm
	for r := 0; r < 12; r++ {
		sync.EndRoundLive(r, dead)
		vf.AdvanceAll(float64(r+1) * 10)
	}
	for i := 0; i < 4; i++ {
		if math.Abs(sync.ChargeWh(i)-vf.ChargeWh(i)) > 1e-9 {
			t.Fatalf("node %d diverged: fleet %v vfleet %v", i, sync.ChargeWh(i), vf.ChargeWh(i))
		}
	}
	if math.Abs(sync.ConsumedWh()-vf.ConsumedWh()) > 1e-9 {
		t.Fatalf("consumed diverged: fleet %v vfleet %v", sync.ConsumedWh(), vf.ConsumedWh())
	}
}
