// Package repro is a from-scratch Go reproduction of "Energy-Aware
// Decentralized Learning with Intermittent Model Training" (Dhasade et al.,
// IPDPS 2024): the SkipTrain and SkipTrain-constrained algorithms, the
// D-PSGD / Greedy / All-Reduce baselines, and every substrate they need —
// a neural-network library, synthetic non-IID datasets, d-regular
// topologies with Metropolis-Hastings mixing, smartphone energy traces,
// battery dynamics with ambient-energy harvesting, channel and TCP
// transports, and a deterministic round-synchronous simulation engine.
//
// The library lives under internal/; see README.md for the package map and
// reproduction status, and ROADMAP.md for the growth plan. bench_test.go
// regenerates every table and figure of the paper.
package repro
