// Solar-fleet example: a 96-node solar-powered fleet spread around the
// globe trains in waves as the sun moves.
//
// Each node sits at a different longitude, so its solar panel peaks at a
// different simulated hour (internal/harvest's Diurnal trace with
// LongitudePhase). A charge-proportional policy — the live-battery
// generalization of the paper's Eq. 5 — lets well-lit nodes train while
// night-side nodes coast on synchronization, and the model keeps improving
// around the clock. A "dark" control run with the same batteries but no
// sun shows why harvesting matters: it burns its charge and stalls.
//
// go run ./examples/solarfleet
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/graph"
	"repro/internal/harvest"
	"repro/internal/nn"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/sim"
)

func main() {
	const (
		nodes   = 96
		degree  = 6
		rounds  = 96
		period  = 24 // rounds per simulated day: 4 days of mission
		seed    = 17
		buckets = 4 // longitude quadrants for the wave display
	)

	g, err := graph.Regular(nodes, degree, seed)
	if err != nil {
		log.Fatal(err)
	}
	weights := graph.Metropolis(g)

	data := dataset.SyntheticConfig{Classes: 10, Dim: 32, Train: nodes * 40, Test: 640, Noise: 3.2, Seed: seed}
	train, testAll, err := dataset.Generate(data)
	if err != nil {
		log.Fatal(err)
	}
	part, err := dataset.ShardPartition(train, nodes, 2, seed)
	if err != nil {
		log.Fatal(err)
	}
	_, test := testAll.Split(testAll.Len() / 2)

	devices := energy.AssignDevices(nodes, energy.Devices())
	workload := energy.CIFAR10Workload()
	meanTrainWh := energy.NetworkRoundWh(nodes, energy.Devices(), workload) / float64(nodes)

	// Batteries hold 12 training rounds of charge; panels peak at 1.5x a
	// round's cost, so a day-side node runs energy-positive and a night-side
	// node slowly drains.
	run := func(label string, trace harvest.Trace) (*sim.Result, *harvest.Fleet) {
		fleet, err := harvest.NewFleet(devices, workload, trace, harvest.Options{
			CapacityRounds: 12,
			InitialSoC:     0.25,
		})
		if err != nil {
			log.Fatal(err)
		}
		policy, err := harvest.NewSoCProportional(1)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(sim.Config{
			Graph: g, Weights: weights,
			Algo:   core.Algorithm{Label: label, Schedule: core.AllTrain{}, Policy: policy},
			Rounds: rounds,
			ModelFactory: func(node int, r *rng.RNG) *nn.Network {
				return nn.MLP(32, []int{24}, 10, r)
			},
			LR: 0.2, BatchSize: 16, LocalSteps: 8,
			Partition: part, Test: test,
			EvalEvery: 12, EvalSubsample: 320,
			Devices: devices, Workload: workload,
			Harvest: fleet, TrackSoC: true,
			Seed: seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res, fleet
	}

	sun, err := harvest.NewDiurnal(1.5*meanTrainWh, period, harvest.LongitudePhase(nodes))
	if err != nil {
		log.Fatal(err)
	}
	solar, solarFleet := run("solar", sun)
	dark, darkFleet := run("dark", harvest.Constant{Wh: 0})

	fmt.Printf("solar fleet: %d nodes across %d longitudes, %d-round day, %d-round mission\n\n",
		nodes, nodes, period, rounds)

	// The wave: mean state of charge per longitude quadrant over time. Each
	// quadrant's charge crests ~6 rounds after its local noon.
	fmt.Println("state of charge by longitude quadrant (one sparkline cell per round):")
	for b := 0; b < buckets; b++ {
		var series []float64
		for _, m := range solar.History {
			mean := 0.0
			count := 0
			for i := b * nodes / buckets; i < (b+1)*nodes/buckets; i++ {
				mean += m.SoCs[i]
				count++
			}
			series = append(series, mean/float64(count))
		}
		fmt.Printf("  longitudes %3d°-%3d°: %s\n", b*360/buckets, (b+1)*360/buckets, report.Sparkline(series))
	}

	var participation []float64
	for _, m := range solar.History {
		participation = append(participation, float64(m.TrainedCount))
	}
	fmt.Printf("\nfleet-wide participation: %s\n\n", report.Sparkline(participation))

	sumTrained := func(res *sim.Result) int {
		t := 0
		for _, tr := range res.TrainedRounds {
			t += tr
		}
		return t
	}
	tb := report.NewTable("solar vs dark (same batteries, same policy)",
		"fleet", "final acc %", "participation %", "harvested Wh", "wasted Wh", "depleted nodes")
	tb.AddRowf("solar|%.2f|%.1f|%.4f|%.4f|%d",
		solar.FinalMeanAcc*100, 100*float64(sumTrained(solar))/float64(nodes*rounds),
		solar.TotalHarvestWh, solarFleet.WastedWh(), solar.History[len(solar.History)-1].Depleted)
	tb.AddRowf("dark|%.2f|%.1f|%.4f|%.4f|%d",
		dark.FinalMeanAcc*100, 100*float64(sumTrained(dark))/float64(nodes*rounds),
		dark.TotalHarvestWh, darkFleet.WastedWh(), dark.History[len(dark.History)-1].Depleted)
	tb.Render(os.Stdout)

	fmt.Println("\nThe solar fleet keeps training for the whole mission — each quadrant")
	fmt.Println("surges as its local sun rises — while the dark fleet spends its")
	fmt.Println("initial charge in the first day and then only synchronizes.")
}
