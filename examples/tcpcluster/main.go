// TCP cluster: decentralized learning over real sockets.
//
// The same engine that drives the in-process simulations can run nodes as
// genuine TCP peers — every model exchange is framed, written to a socket,
// and decoded on the other side, like the paper's DecentralizePy
// deployment (one process per node, socket transport). This example runs
// a small SkipTrain cluster on localhost twice — once over channels and
// once over TCP — and verifies the trajectories are bit-identical, then
// prints the wire statistics.
//
//	go run ./examples/tcpcluster
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/transport"
)

func main() {
	const (
		nodes  = 8
		degree = 4
		rounds = 16
		seed   = 9
	)

	g, err := graph.Regular(nodes, degree, seed)
	if err != nil {
		log.Fatal(err)
	}
	weights := graph.Metropolis(g)
	data := dataset.SyntheticConfig{Classes: 6, Dim: 16, Train: nodes * 40, Test: 300, Noise: 2.0, Seed: seed}
	train, test, err := dataset.Generate(data)
	if err != nil {
		log.Fatal(err)
	}
	part, err := dataset.ShardPartition(train, nodes, 2, seed)
	if err != nil {
		log.Fatal(err)
	}

	base := sim.Config{
		Graph: g, Weights: weights,
		Algo:   core.SkipTrain(core.Gamma{GammaTrain: 2, GammaSync: 2}),
		Rounds: rounds,
		ModelFactory: func(node int, r *rng.RNG) *nn.Network {
			return nn.LogisticRegression(16, 6, r)
		},
		LR: 0.2, BatchSize: 16, LocalSteps: 4,
		Partition: part, Test: test,
		EvalEvery: 4,
		Seed:      seed,
	}

	// Run 1: in-process channel transport.
	local, err := sim.Run(base)
	if err != nil {
		log.Fatal(err)
	}

	// Run 2: every node listens on a real localhost TCP port.
	tcpNet, err := transport.NewTCP(nodes, "127.0.0.1", 64)
	if err != nil {
		log.Fatal(err)
	}
	defer tcpNet.Close()
	fmt.Println("node listen addresses:")
	for i := 0; i < nodes; i++ {
		fmt.Printf("  node %d: %s\n", i, tcpNet.Addr(i))
	}
	cfgTCP := base
	cfgTCP.Network = tcpNet
	overTCP, err := sim.Run(cfgTCP)
	if err != nil {
		log.Fatal(err)
	}

	tb := report.NewTable("\nChannel vs TCP transport (same seed)",
		"round", "local acc %", "tcp acc %", "identical")
	for i, m := range local.Evaluations() {
		mt := overTCP.Evaluations()[i]
		tb.AddRowf("%d|%.3f|%.3f|%v", m.Round+1, m.MeanAcc*100, mt.MeanAcc*100, m.MeanAcc == mt.MeanAcc)
	}
	tb.Render(os.Stdout)

	// Wire accounting: per round every node ships one model per neighbor.
	paramCount := nn.LogisticRegression(16, 6, rng.New(0)).ParamCount()
	msgBytes := transport.EncodedSize(paramCount)
	totalMsgs := nodes * degree * rounds
	fmt.Printf("\nwire traffic: %d model messages x %d bytes = %.1f MiB over %d rounds\n",
		totalMsgs, msgBytes, float64(totalMsgs*msgBytes)/(1<<20), rounds)
	if local.FinalMeanAcc != overTCP.FinalMeanAcc {
		log.Fatal("transport changed the result — determinism broken")
	}
	fmt.Println("trajectories identical across transports — the engine is wire-agnostic.")
}
