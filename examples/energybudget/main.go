// Energy-budget example: a battery-constrained IoT/UAV fleet.
//
// A mixed fleet of 24 devices (the four smartphone profiles of the paper's
// Table 2, standing in for heterogeneous drones/sensors) can each afford
// only a fraction of the full training schedule before its battery dies.
// The example compares the three strategies of the paper's Section 4.6:
//
//   - D-PSGD        — energy-oblivious: everyone trains every round;
//   - Greedy        — train every round until the battery dies, then only
//     relay/synchronize;
//   - SkipTrain-constrained — spread the battery across the whole mission
//     with per-node training probabilities (Eq. 5).
//
// go run ./examples/energybudget
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/sim"
)

func main() {
	const (
		nodes               = 24
		degree              = 4
		rounds              = 60
		seed                = 3
		missionBudgetRounds = 18 // each device can train ~30% of the mission
	)

	g, err := graph.Regular(nodes, degree, seed)
	if err != nil {
		log.Fatal(err)
	}
	weights := graph.Metropolis(g)

	data := dataset.SyntheticConfig{Classes: 10, Dim: 32, Train: nodes * 40, Test: 400, Noise: 2.5, Seed: seed}
	train, test, err := dataset.Generate(data)
	if err != nil {
		log.Fatal(err)
	}
	part, err := dataset.ShardPartition(train, nodes, 2, seed)
	if err != nil {
		log.Fatal(err)
	}

	// Heterogeneous budgets: scale each device's Table 2 budget profile so
	// the fleet average is missionBudgetRounds.
	devices := energy.AssignDevices(nodes, energy.Devices())
	taus := make([]int, nodes)
	for i, d := range devices {
		profile := float64(d.RoundBudget(energy.CIFAR10Workload(), 0.10)) // 272..681
		taus[i] = int(profile / 387.25 * missionBudgetRounds)             // mean-normalize
		if taus[i] < 1 {
			taus[i] = 1
		}
	}

	gamma := core.Gamma{GammaTrain: 2, GammaSync: 2}
	run := func(label string, algo core.Algorithm) *sim.Result {
		res, err := sim.Run(sim.Config{
			Graph: g, Weights: weights,
			Algo:   algo,
			Rounds: rounds,
			ModelFactory: func(node int, r *rng.RNG) *nn.Network {
				return nn.LogisticRegression(32, 10, r)
			},
			LR: 0.2, BatchSize: 16, LocalSteps: 8,
			Partition: part, Test: test,
			EvalEvery: 6,
			Devices:   devices,
			Workload:  energy.CIFAR10Workload(),
			Seed:      seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	newBudget := func() *energy.Budget { return energy.NewBudget(append([]int(nil), taus...)) }
	dpsgd := run("D-PSGD", core.DPSGD())
	greedy := run("Greedy", core.Greedy(newBudget()))
	constrained := run("SkipTrain-constrained",
		core.SkipTrainConstrained(gamma, rounds, newBudget(), nodes))

	tb := report.NewTable(
		fmt.Sprintf("Battery-constrained fleet: %d devices, ~%d training rounds of battery each, %d-round mission",
			nodes, missionBudgetRounds, rounds),
		"strategy", "final acc %", "training Wh", "battery respected")
	tb.AddRowf("D-PSGD (oblivious)|%.2f|%.4f|no", dpsgd.FinalMeanAcc*100, dpsgd.TotalTrainWh)
	tb.AddRowf("Greedy|%.2f|%.4f|yes", greedy.FinalMeanAcc*100, greedy.TotalTrainWh)
	tb.AddRowf("SkipTrain-constrained|%.2f|%.4f|yes", constrained.FinalMeanAcc*100, constrained.TotalTrainWh)
	tb.Render(os.Stdout)

	fmt.Println("\nper-node training rounds (budget -> used):")
	for i := 0; i < 8; i++ {
		fmt.Printf("  node %2d (%s): %d -> greedy %d, constrained %d\n",
			i, devices[i].Name, taus[i], greedy.TrainedRounds[i], constrained.TrainedRounds[i])
	}
	fmt.Println("\nGreedy burns its battery early; the constrained variant spreads the")
	fmt.Println("same budget across the mission and synchronizes in between, which is")
	fmt.Println("exactly why it reaches a better final model in the paper's Figure 6.")
}
