// Million-node example: the struct-of-arrays fleet engine sweeping a
// planetary-scale solar fleet through a multi-day mission.
//
// One million nodes spread around the globe (internal/harvest's Diurnal
// trace with LongitudePhase) each carry a small battery and train whenever
// their state of charge clears a threshold — the paper's SoC-threshold
// participation rule. The SoAFleet engine keeps all battery state in flat
// parallel slices and fuses the participation decision, battery update,
// harvest, and liveness count into a single pass per node
// (SweepThreshold), so a 1M-node round costs milliseconds and the whole
// mission finishes in well under a minute on a laptop. The engine is
// bit-identical to the pointer-based Fleet (pinned by
// internal/harvest/difftest) — this example just runs the same physics a
// thousand times bigger.
//
// The sweep streams telemetry (internal/obs) while it runs — a live
// progress line with per-round participation and node-round throughput —
// and closes with a reconstructed run report (internal/obs/analyze):
// participation timelines, throughput, and the fleet energy ledger.
//
//	go run ./examples/millionnode
//	go run ./examples/millionnode -nodes 1000000 -days 4 -minsoc 0.2
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/energy"
	"repro/internal/harvest"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
)

func main() {
	var (
		nodes  = flag.Int("nodes", 1_000_000, "fleet size")
		days   = flag.Int("days", 4, "mission length in simulated days")
		period = flag.Int("period", 24, "rounds per simulated day")
		minSoC = flag.Float64("minsoc", 0.2, "train when SoC exceeds this threshold")
		peak   = flag.Float64("peak", 1.5, "solar peak as a multiple of the mean per-round training cost")
	)
	flag.Parse()
	rounds := *days * *period

	devices := energy.AssignDevices(*nodes, energy.Devices())
	w := energy.CIFAR10Workload()
	meanTrainWh := energy.NetworkRoundWh(*nodes, energy.Devices(), w) / float64(*nodes)
	trace, err := harvest.NewDiurnal(*peak*meanTrainWh, *period, harvest.LongitudePhase(*nodes))
	if err != nil {
		log.Fatal(err)
	}
	fleet, err := harvest.NewSoAFleet(devices, w, trace, harvest.Options{
		CapacityRounds: 12,
		InitialSoC:     0.5,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("million-node fleet: %d nodes, %d rounds (%d days x %d rounds), trace %s\n",
		*nodes, rounds, *days, *period, fleet.TraceName())

	// Telemetry: a live progress line on stderr (round, participation,
	// node-round throughput) and an in-memory buffer the final report is
	// reconstructed from. Round events only — per-round energy totals
	// would cost extra O(nodes) passes against a ~7 ns/node-round sweep,
	// so the energy ledger is reported once from the fleet's cumulative
	// counters instead.
	mem := obs.NewMemory()
	probe := obs.NewProbe(obs.Multi(obs.NewProgress(os.Stderr), mem))
	manifest := obs.NewManifest("millionnode", "soa-threshold-sweep", 0).
		Scale(*nodes, rounds).
		Set("trace", fleet.TraceName()).
		Setf("minsoc", "%g", *minSoC).
		Setf("peak", "%g", *peak).
		Setf("period", "%d", *period).
		Build()
	probe.RunStart(&manifest)

	totalTrained := 0
	start := time.Now()
	for t := 0; t < rounds; t++ {
		probe.RoundStart(t, "sweep")
		stats := fleet.SweepThreshold(t, *minSoC)
		totalTrained += stats.Trained
		probe.RoundEnd(t, obs.RoundStats{
			Trained: stats.Trained, Live: stats.Live, Depleted: stats.Depleted,
		})
	}
	elapsed := time.Since(start)
	probe.RunEnd(rounds, totalTrained)

	rep := analyze.FromEvents(mem.Events())
	fmt.Fprintln(os.Stderr)
	rep.WriteText(os.Stdout)

	mean, min, depleted := fleet.SoCStats(nil)
	fmt.Printf("\nfinal fleet: mean SoC %.3f, min SoC %.3f, depleted %d/%d\n",
		mean, min, depleted, fleet.Nodes())
	fmt.Printf("energy: harvested %.1f Wh, consumed %.1f Wh, wasted %.1f Wh\n",
		fleet.HarvestedWh(), fleet.ConsumedWh(), fleet.WastedWh())
	nodeRounds := float64(*nodes) * float64(rounds)
	fmt.Printf("swept %.0fM node-rounds in %v (%.1fM node-rounds/s)\n",
		nodeRounds/1e6, elapsed.Round(time.Millisecond), nodeRounds/elapsed.Seconds()/1e6)
}
