// Topology sweep: how graph density buys synchronization.
//
// The paper observes (Section 4.3) that denser topologies need fewer
// synchronization rounds because models mix faster. The mixing speed of a
// topology is its spectral gap 1-|λ₂(W)|. This example sweeps topologies
// from a ring to a 10-regular graph, reports each gap, and runs SkipTrain
// with the same schedule on all of them to show accuracy tracking the gap.
//
//	go run ./examples/topologysweep
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/sim"
)

func main() {
	const (
		nodes  = 32
		rounds = 48
		seed   = 5
	)

	data := dataset.SyntheticConfig{Classes: 10, Dim: 32, Train: nodes * 40, Test: 400, Noise: 2.5, Seed: seed}
	train, test, err := dataset.Generate(data)
	if err != nil {
		log.Fatal(err)
	}
	part, err := dataset.ShardPartition(train, nodes, 2, seed)
	if err != nil {
		log.Fatal(err)
	}

	type arm struct {
		name string
		g    *graph.Graph
	}
	var arms []arm
	ring, err := graph.Ring(nodes)
	if err != nil {
		log.Fatal(err)
	}
	arms = append(arms, arm{"ring (d=2)", ring})
	for _, d := range []int{4, 6, 8, 10} {
		g, err := graph.Regular(nodes, d, seed)
		if err != nil {
			log.Fatal(err)
		}
		arms = append(arms, arm{fmt.Sprintf("%d-regular", d), g})
	}
	full, err := graph.Complete(nodes)
	if err != nil {
		log.Fatal(err)
	}
	arms = append(arms, arm{"complete", full})

	tb := report.NewTable("Topology sweep: SkipTrain(2,2) on 32 nodes, 48 rounds",
		"topology", "spectral gap", "final acc %", "acc std %")
	for _, a := range arms {
		w := graph.Metropolis(a.g)
		gap := w.SpectralGap(a.g, 400, seed)
		res, err := sim.Run(sim.Config{
			Graph: a.g, Weights: w,
			Algo:   core.SkipTrain(core.Gamma{GammaTrain: 2, GammaSync: 2}),
			Rounds: rounds,
			ModelFactory: func(node int, r *rng.RNG) *nn.Network {
				return nn.LogisticRegression(32, 10, r)
			},
			LR: 0.2, BatchSize: 16, LocalSteps: 8,
			Partition: part, Test: test,
			EvalEvery: 0,
			Seed:      seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		tb.AddRowf("%s|%.4f|%.2f|%.2f", a.name, gap, res.FinalMeanAcc*100, res.FinalStdAcc*100)
	}
	tb.Render(os.Stdout)
	fmt.Println("\nLarger spectral gaps mix models faster: accuracy rises and the")
	fmt.Println("spread across nodes falls as the topology densifies — the paper's")
	fmt.Println("rationale for tuning Γsync per degree.")
}
