// Quickstart: the smallest end-to-end SkipTrain experiment.
//
// 16 nodes on a 4-regular graph collaboratively learn a 10-class task with
// heavily non-IID local data (2 labels per node). We run the conventional
// D-PSGD baseline and SkipTrain with a (2 train, 2 sync) schedule for the
// same number of rounds, then compare accuracy and energy.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/sim"
)

func main() {
	const (
		nodes  = 16
		degree = 4
		rounds = 40
		seed   = 1
	)

	// 1. Build the communication topology and its mixing matrix.
	g, err := graph.Regular(nodes, degree, seed)
	if err != nil {
		log.Fatal(err)
	}
	weights := graph.Metropolis(g)

	// 2. Generate a synthetic 10-class dataset and give each node two
	//    label shards (the paper's non-IID CIFAR-10 setup).
	data := dataset.SyntheticConfig{
		Classes: 10, Dim: 32, Train: nodes * 40, Test: 400, Noise: 2.5, Seed: seed,
	}
	train, test, err := dataset.Generate(data)
	if err != nil {
		log.Fatal(err)
	}
	part, err := dataset.ShardPartition(train, nodes, 2, seed)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Run both algorithms with identical data, models, and seeds.
	run := func(algo core.Algorithm) *sim.Result {
		res, err := sim.Run(sim.Config{
			Graph: g, Weights: weights,
			Algo:   algo,
			Rounds: rounds,
			ModelFactory: func(node int, r *rng.RNG) *nn.Network {
				return nn.LogisticRegression(32, 10, r)
			},
			LR: 0.2, BatchSize: 16, LocalSteps: 8,
			Partition: part, Test: test,
			EvalEvery: 4,
			Devices:   energy.AssignDevices(nodes, energy.Devices()),
			Workload:  energy.CIFAR10Workload(),
			Seed:      seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	dpsgd := run(core.DPSGD())
	skip := run(core.SkipTrain(core.Gamma{GammaTrain: 2, GammaSync: 2}))

	// 4. Compare.
	tb := report.NewTable("Quickstart: 16 nodes, 4-regular, 40 rounds",
		"algorithm", "final acc %", "acc std %", "training Wh", "trained rounds/node")
	tb.AddRowf("D-PSGD|%.2f|%.2f|%.4f|%d",
		dpsgd.FinalMeanAcc*100, dpsgd.FinalStdAcc*100, dpsgd.TotalTrainWh, dpsgd.TrainedRounds[0])
	tb.AddRowf("SkipTrain(2,2)|%.2f|%.2f|%.4f|%d",
		skip.FinalMeanAcc*100, skip.FinalStdAcc*100, skip.TotalTrainWh, skip.TrainedRounds[0])
	tb.Render(os.Stdout)

	curve := func(r *sim.Result) []float64 {
		var ys []float64
		for _, m := range r.Evaluations() {
			ys = append(ys, m.MeanAcc)
		}
		return ys
	}
	fmt.Printf("\nD-PSGD    %s\nSkipTrain %s\n", report.Sparkline(curve(dpsgd)), report.Sparkline(curve(skip)))
	fmt.Printf("\nSkipTrain used %.0f%% of D-PSGD's training energy.\n",
		skip.TotalTrainWh/dpsgd.TotalTrainWh*100)
}
