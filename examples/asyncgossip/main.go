// Async gossip: the paper's future-work extension in action.
//
// Section 5.3 of the paper notes that D-PSGD's synchronous rounds are hard
// to coordinate at scale and leaves an asynchronous SkipTrain to future
// research. This example runs that extension: an AD-PSGD-style gossip
// engine in deterministic virtual time where each device advances at the
// speed its energy trace dictates — a OnePlus Nord 2 finishes a training
// step 2.6x faster than a Xiaomi Poco X3, so it simply gossips more often;
// no barrier ever waits for a straggler.
//
//	go run ./examples/asyncgossip
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/async"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/report"
	"repro/internal/rng"
)

func main() {
	const (
		nodes   = 24
		degree  = 4
		horizon = 800.0 // virtual seconds
		seed    = 11
	)

	g, err := graph.Regular(nodes, degree, seed)
	if err != nil {
		log.Fatal(err)
	}
	data := dataset.SyntheticConfig{Classes: 10, Dim: 32, Train: nodes * 40, Test: 400, Noise: 2.5, Seed: seed}
	train, test, err := dataset.Generate(data)
	if err != nil {
		log.Fatal(err)
	}
	part, err := dataset.ShardPartition(train, nodes, 2, seed)
	if err != nil {
		log.Fatal(err)
	}
	devices := energy.AssignDevices(nodes, energy.Devices())

	run := func(algo core.Algorithm) *async.Result {
		res, err := async.Run(async.Config{
			Graph:   g,
			Algo:    algo,
			Horizon: horizon,
			ModelFactory: func(node int, r *rng.RNG) *nn.Network {
				return nn.LogisticRegression(32, 10, r)
			},
			LR: 0.05, BatchSize: 16, LocalSteps: 2,
			Partition: part, Test: test,
			Devices:          devices,
			Workload:         energy.CIFAR10Workload(),
			EvalEverySeconds: 50,
			EvalSubsample:    200,
			Seed:             seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	full := run(core.DPSGD()) // async all-train
	skip := run(core.SkipTrain(core.Gamma{GammaTrain: 1, GammaSync: 1}))

	tb := report.NewTable(
		fmt.Sprintf("Asynchronous gossip: %d heterogeneous devices, %.0f virtual seconds", nodes, horizon),
		"algorithm", "final acc %", "acc std %", "training Wh", "gossips", "steps (min..max/node)")
	describe := func(name string, r *async.Result) {
		lo, hi := r.StepsPerNode[0], r.StepsPerNode[0]
		for _, s := range r.StepsPerNode {
			if s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
		}
		tb.AddRowf("%s|%.2f|%.2f|%.4f|%d|%d..%d",
			name, r.FinalMeanAcc*100, r.FinalStdAcc*100, r.TotalTrainWh, r.GossipsSent, lo, hi)
	}
	describe("async all-train", full)
	describe("async SkipTrain(1,1)", skip)
	tb.Render(os.Stdout)

	var accCurve []float64
	for _, s := range skip.History {
		accCurve = append(accCurve, s.MeanAcc)
	}
	fmt.Printf("\nasync SkipTrain accuracy over virtual time: %s\n", report.Sparkline(accCurve))
	fmt.Println("\nFast devices took more steps than slow ones — no barrier ever waited")
	fmt.Println("for a straggler — and the skip schedule nearly doubled the gossip rate")
	fmt.Println("at ~9% less training energy. Accuracy is noisier than the synchronous")
	fmt.Println("engine's: with only pairwise mixing, extra sync steps do not fully")
	fmt.Println("offset lost training. That trade-off is exactly why the paper kept")
	fmt.Println("SkipTrain synchronous and left the async variant to future work")
	fmt.Println("(Section 5.3); this engine makes the trade-off measurable.")
}
