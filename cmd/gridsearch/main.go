// Command gridsearch runs the Γ-schedule grid searches. The default job
// regenerates Figure 3 — the Γtrain x Γsync grid on CIFAR-like data
// across topology degrees — exactly as before. Two further jobs expose
// the harvest-coupled searches, locally or against a sweepd server:
//
//	gridsearch                                    # Figure 3, local
//	gridsearch -job gamma                         # harvest-aware Γ search
//	gridsearch -job degree -degrees 4,6,8         # degree x regime x Γ grid
//	gridsearch -job degree -server localhost:7600 -progress
//	gridsearch -job gamma -server localhost:7600 -expect-all-hits
//
// With -server the job executes on the sweep service: cells are served
// from its content-addressed cache where possible, per-cell progress
// streams back live (-progress prints it), and the rendered tables are
// produced locally from the reply. -expect-all-hits exits 1 unless every
// cell was a cache hit — CI uses it to assert warm reruns recompute
// nothing. Without -server, -cache/-workers memoize locally on disk.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/sweep"
)

func main() {
	var (
		nodes   = flag.Int("nodes", 48, "number of nodes (paper: 256)")
		rounds  = flag.Int("rounds", 64, "rounds per grid cell (paper: 1000)")
		seed    = flag.Uint64("seed", 42, "experiment seed")
		degrees = flag.String("degrees", "", "comma-separated topology degrees (default: job-specific)")
		job     = flag.String("job", "figure3", "figure3 | gamma (harvest-aware Γ search) | degree (degree x regime grid)")
		server  = flag.String("server", "", "sweepd address; runs -job gamma|degree on the service")
		cache   = flag.String("cache", "", "local runs: memoize cells in this directory")
		workers = flag.Int("workers", 0, "local runs: worker pool size (0 = GOMAXPROCS)")
		expect  = flag.Bool("expect-all-hits", false, "with -server: exit 1 unless every cell was a cache hit")
		prog    = flag.Bool("progress", false, "with -server: print streamed per-cell progress")
	)
	flag.Parse()

	degs, err := parseDegrees(*degrees, *job)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(2)
	}
	o := experiments.Options{Nodes: *nodes, Rounds: *rounds, Seed: *seed, Out: os.Stdout}

	if *server != "" {
		err = runRemote(*server, *job, experiments.SweepJobParams{
			Nodes: *nodes, Rounds: *rounds, Seed: *seed, Degrees: degs,
		}, *expect, *prog)
	} else {
		err = runLocal(o, *job, degs, *cache, *workers)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func parseDegrees(s, job string) ([]int, error) {
	if s == "" {
		if job == "figure3" {
			return []int{6, 8, 10}, nil // Figure 3's historical default axis
		}
		return nil, nil // job-specific default (degree grid: 4,6,8)
	}
	var degs []int
	for _, part := range strings.Split(s, ",") {
		d, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad degree %q: %v", part, err)
		}
		degs = append(degs, d)
	}
	return degs, nil
}

// runLocal executes the job in-process, with an optional on-disk memo
// store so repeated local runs skip computed cells just like the service.
func runLocal(o experiments.Options, job string, degs []int, cache string, workers int) error {
	if cache != "" || workers != 0 {
		var store sweep.Store
		if cache != "" {
			disk, err := sweep.NewFileStore(cache)
			if err != nil {
				return err
			}
			store = sweep.Tiered(sweep.NewMemStore(0), disk)
		}
		o.Sweep = sweep.NewRunner(store, par.NewPool(workers))
	}
	switch job {
	case "figure3":
		res, err := experiments.Figure3(o, degs)
		if err != nil {
			return err
		}
		for i, deg := range res.Degrees {
			b := res.Best[i]
			fmt.Printf("tuned for %d-regular: Γtrain=%d Γsync=%d\n", deg, b.GammaTrain, b.GammaSync)
		}
	case "gamma":
		if _, err := experiments.TableGammaHarvest(o); err != nil {
			return err
		}
	case "degree":
		if _, err := experiments.TableDegreeGamma(o, degs); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown job %q (want figure3, gamma, or degree)", job)
	}
	if o.Sweep != nil {
		fmt.Printf("sweep: %s\n", o.Sweep.Stats())
	}
	return nil
}

// runRemote submits the job to a sweepd server and renders the reply.
func runRemote(addr, job string, params experiments.SweepJobParams, expectAllHits, progress bool) error {
	var kind string
	switch job {
	case "gamma":
		kind = experiments.JobGammaGrid
	case "degree":
		kind = experiments.JobDegreeGrid
	default:
		return fmt.Errorf("job %q cannot run on a server (want gamma or degree)", job)
	}
	c, err := sweep.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()

	var onEvent func(obs.Event)
	if progress {
		onEvent = func(ev obs.Event) {
			if ev.Kind == obs.KindCell {
				fmt.Printf("cell %-60s %8.1fms\n", ev.Label, float64(ev.WallNs)/1e6)
			}
		}
	}
	raw, stats, err := c.Do(kind, params, onEvent)
	if err != nil {
		return err
	}
	switch kind {
	case experiments.JobGammaGrid:
		var rows []experiments.GammaHarvestRow
		if err := json.Unmarshal(raw, &rows); err != nil {
			return fmt.Errorf("decode %s reply: %w", kind, err)
		}
		experiments.RenderGammaHarvestRows(os.Stdout, rows)
	case experiments.JobDegreeGrid:
		var res experiments.DegreeGammaResult
		if err := json.Unmarshal(raw, &res); err != nil {
			return fmt.Errorf("decode %s reply: %w", kind, err)
		}
		res.Render(os.Stdout)
	}
	fmt.Printf("sweep: %s\n", stats)
	if expectAllHits && !stats.AllHits() {
		return fmt.Errorf("expected a fully warm cache, got %s", stats)
	}
	return nil
}
