// Command gridsearch regenerates Figure 3: the Γtrain x Γsync grid search
// on CIFAR-like data across topology degrees, with the validation-accuracy
// heatmaps (scaled simulation) and the exact paper-scale energy heatmap.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		nodes   = flag.Int("nodes", 48, "number of nodes (paper: 256)")
		rounds  = flag.Int("rounds", 64, "rounds per grid cell (paper: 1000)")
		seed    = flag.Uint64("seed", 42, "experiment seed")
		degrees = flag.String("degrees", "6,8,10", "comma-separated topology degrees")
	)
	flag.Parse()

	var degs []int
	for _, part := range strings.Split(*degrees, ",") {
		d, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad degree %q: %v\n", part, err)
			os.Exit(1)
		}
		degs = append(degs, d)
	}
	o := experiments.Options{Nodes: *nodes, Rounds: *rounds, Seed: *seed, Out: os.Stdout}
	res, err := experiments.Figure3(o, degs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	for i, deg := range res.Degrees {
		b := res.Best[i]
		fmt.Printf("tuned for %d-regular: Γtrain=%d Γsync=%d\n", deg, b.GammaTrain, b.GammaSync)
	}
}
