// Command harvestsim runs a decentralized-learning experiment on an
// intermittently-powered fleet: per-node batteries, an ambient harvest
// trace, and a charge-aware participation policy (internal/harvest).
//
// The default configuration is a 96-node diurnal fleet spread over all
// longitudes — the sun sweeps around the globe and nodes train in waves —
// but every piece is under flag control:
//
//	harvestsim                                   # 96-node solar fleet
//	harvestsim -trace markov -policy hysteresis  # bursty RF-powered fleet
//	harvestsim -trace constant -peak 0           # no recharge (paper setting)
//	harvestsim -trace csv -tracefile solar.csv   # replay a recorded trace
//	harvestsim -policy mpc -fhorizon 24          # forecast-aware MPC planner
//	harvestsim -dropdead -cutoff 0.25 -idle 0.2  # brown-outs silence radios
//	harvestsim -dropdead -cutoff 0.3 -idle 0.25 -rejoin catchup
//	                                             # checkpoint/restore on rejoin
//	harvestsim -grid -trace diurnal              # Γ-schedule search per regime
//	harvestsim -telemetry -events run.jsonl      # live progress + JSONL events
//	harvestsim -audit                            # live invariant auditor
//	harvestsim -telemetry -pprof localhost:6060  # ... with pprof/expvar served
//
// With -telemetry, the run streams structured telemetry (internal/obs): a
// live progress line on stderr with per-round participation and streamed
// SoC percentiles, and — with -events — a JSONL event stream (run manifest,
// round boundaries, per-phase wall-clock timings, brown-outs, revivals,
// dropped sends, evaluations) for offline analysis. Telemetry never
// perturbs the simulation: the model output is bit-identical with it on or
// off. -audit attaches the streaming invariant auditor
// (internal/obs/analyze) as one more sink: per-round energy conservation,
// brownout/revival alternation, counter monotonicity, and phase-time
// accounting are checked live, and any violation fails the run with exit
// status 1. -pprof serves the standard pprof and expvar handlers for the
// run's duration.
//
// With -async, the round engine is replaced by the event-driven one
// (internal/async): batteries evolve on a continuous virtual clock, an
// unaffordable node sleeps until its solved charge-arrival crossing, and a
// brown-out interrupts an in-flight training step at the exact cutoff
// crossing — the computation is discarded but its partial energy stays
// spent. One trace round spans the fleet-mean step duration, so -rounds,
// -peak, and -period describe the same ambient process as the round
// engine. Flags tied to round-engine machinery (-engine, -dropdead,
// -rejoin, -ckptdir, -grid) conflict with -async.
//
// With -grid, instead of a single run the command evaluates the full 4x4
// Γtrain x Γsync grid under the harvest regime selected by -trace (each
// cell a fresh-fleet simulation, cells fanned out across workers) and
// reports the best schedule — the harvest-aware version of the paper's
// Figure 3 search. -trace constant -peak 0 recovers the fixed-budget
// baseline.
//
// With -dropdead, a node whose battery sits at or below the -cutoff
// state of charge is browned out for the round: it neither trains nor
// communicates, every edge incident to it is dropped, and the mixing
// matrix is re-normalized over the live subgraph (see docs/ARCHITECTURE.md).
// Without it the engine routes sync traffic through depleted nodes — the
// optimistic baseline.
//
// With -rejoin, the checkpoint subsystem (internal/checkpoint) snapshots a
// dying node's post-aggregation model and applies the chosen rejoin rule
// when it recharges: stale (resume frozen parameters, the baseline),
// restore (freshest aggregated state in the live neighborhood), or catchup
// (staleness-discounted blend). -ckptdir persists snapshots to disk;
// without it they live in memory.
//
// Runs are deterministic: the same seed and flags reproduce the same
// output bit-for-bit.
package main

import (
	_ "expvar" // registers /debug/vars on the -pprof server
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the -pprof server
	"os"
	"sort"
	"strings"

	"repro/internal/async"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/harvest"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/sim"
)

func main() {
	var (
		nodes    = flag.Int("nodes", 96, "fleet size")
		engine   = flag.String("engine", "pointer", "fleet engine: pointer | soa (struct-of-arrays; bit-identical, built for large fleets)")
		degree   = flag.Int("degree", 6, "topology degree")
		rounds   = flag.Int("rounds", 96, "total rounds T")
		period   = flag.Int("period", 24, "rounds per simulated day (diurnal trace)")
		peak     = flag.Float64("peak", 1.5, "trace magnitude as a multiple of the mean per-round training cost")
		traceKin = flag.String("trace", "diurnal", "diurnal | constant | markov | csv")
		traceCSV = flag.String("tracefile", "", "replay CSV for -trace csv (round,node,harvest_wh)")
		policyK  = flag.String("policy", "proportional", "proportional | threshold | hysteresis | mpc | mpc-persist")
		fhorizon = flag.Int("fhorizon", 0, "mpc policies: forecast window in rounds (0 = one -period day)")
		fnoise   = flag.Float64("fnoise", 0, "-policy mpc: multiplicative forecast noise sigma (0 = exact oracle)")
		capacity = flag.Float64("capacity", 12, "battery capacity in training-rounds of energy")
		initSoC  = flag.Float64("initsoc", 0.5, "initial state of charge [0,1]; 0 starts batteries empty")
		minSoC   = flag.Float64("minsoc", 0.2, "threshold policy: minimum SoC to train")
		lowSoC   = flag.Float64("low", 0.15, "hysteresis policy: dormancy threshold")
		highSoC  = flag.Float64("high", 0.4, "hysteresis policy: resume threshold")
		exponent = flag.Float64("exponent", 1, "proportional policy: p = SoC^exponent")
		cutoff   = flag.Float64("cutoff", 0, "brown-out cutoff as a fraction of capacity [0,1)")
		idle     = flag.Float64("idle", 0, "always-on idle draw per round, as a multiple of the mean training cost")
		dropDead = flag.Bool("dropdead", false, "silence browned-out nodes: drop their edges and re-normalize the mixing matrix each round")
		rejoin   = flag.String("rejoin", "", "checkpoint/restore on rejoin: stale | restore | catchup (requires -dropdead; empty = off)")
		ckptDir  = flag.String("ckptdir", "", "persist snapshots under this directory (default: in-memory store)")
		grid     = flag.Bool("grid", false, "run the 4x4 Γtrain x Γsync grid search under the -trace regime instead of a single run")
		asyncRun = flag.Bool("async", false, "run the event-driven intermittency engine (internal/async): batteries on a continuous virtual clock, solved wake/brown-out crossings instead of round-boundary settlement")
		gt       = flag.Int("gt", 0, "Γtrain (0 = all-train schedule)")
		gs       = flag.Int("gs", 0, "Γsync (needs -gt > 0: SkipTrain schedule)")
		lr       = flag.Float64("lr", 0.2, "learning rate η")
		batch    = flag.Int("batch", 16, "batch size |ξ|")
		steps    = flag.Int("steps", 8, "local steps E")
		evalInt  = flag.Int("eval", 12, "evaluate every N rounds (and always after the last)")
		seed     = flag.Uint64("seed", 42, "experiment seed")

		telemetry = flag.Bool("telemetry", false, "stream telemetry: a live progress line on stderr (internal/obs; see -events)")
		events    = flag.String("events", "", "with -telemetry: write the JSONL event stream to this file")
		audit     = flag.Bool("audit", false, "attach the streaming invariant auditor (internal/obs/analyze): check energy conservation, brownout alternation, counters, and phase times live; violations fail the run")
		pprofAddr = flag.String("pprof", "", "serve pprof and expvar on this address (e.g. localhost:6060) for the run's duration")
	)
	flag.Usage = usage
	flag.Parse()

	// Validate the Γ flag pair up front: -gs without -gt used to be
	// silently ignored and negative values were accepted. Both are usage
	// errors, reported as such.
	if _, err := core.ScheduleFromGammaFlags(*gt, *gs); err != nil {
		usageError(err.Error())
	}
	// -events without -telemetry would silently record nothing — the same
	// silent-ignore hazard the Γ pair check closes.
	if *events != "" && !*telemetry {
		usageError("-events records the telemetry event stream and needs -telemetry")
	}
	// Bind the pprof listener up front so a bad address is a usage error,
	// not a mid-run surprise. The DefaultServeMux carries the pprof and
	// expvar handlers via their side-effect imports.
	if *pprofAddr != "" {
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			usageError(fmt.Sprintf("-pprof: cannot listen on %q: %v", *pprofAddr, err))
		}
		fmt.Fprintf(os.Stderr, "pprof/expvar on http://%s/debug/pprof/\n", ln.Addr())
		go http.Serve(ln, nil)
	}

	// The telemetry sink chain: a live progress line on stderr plus the
	// JSONL event stream when -events is set, and the streaming invariant
	// auditor when -audit is set (independently of -telemetry). A nil sink
	// yields a nil (disabled) probe, so the engines pay only nil checks.
	var sinks []obs.Sink
	if *telemetry {
		sinks = append(sinks, obs.NewProgress(os.Stderr))
		if *events != "" {
			fh, err := os.Create(*events)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			sinks = append(sinks, obs.NewJSONL(fh))
		}
	}
	var auditor *analyze.Auditor
	if *audit {
		auditor = analyze.NewAuditor()
		sinks = append(sinks, auditor)
	}
	var sink obs.Sink
	if len(sinks) > 0 {
		sink = obs.Multi(sinks...)
	}
	probe := obs.NewProbe(sink)
	// -grid runs the experiment package's standard grid world (6-regular
	// topology, shared fleet shape and SoC-threshold policy) and searches
	// the schedule itself, so the single-run fleet/policy/schedule flags
	// have no effect there. Explicitly setting one alongside -grid is the
	// same silent-ignore hazard as -gs without -gt: reject it.
	// -async replaces the round engine with the event-driven one. The
	// flags below configure machinery that only exists in the round
	// engine (pointer/SoA round fleets, per-round dropout, checkpoint
	// rejoin), so setting one alongside -async is a usage error, not a
	// silent no-op.
	if *asyncRun {
		if *grid {
			usageError("-grid searches schedules on the round engine; it cannot be combined with -async")
		}
		roundOnly := map[string]bool{
			"engine": true, "dropdead": true, "rejoin": true, "ckptdir": true,
		}
		var ignored []string
		flag.Visit(func(f *flag.Flag) {
			if roundOnly[f.Name] {
				ignored = append(ignored, "-"+f.Name)
			}
		})
		if len(ignored) > 0 {
			usageError(fmt.Sprintf("-async runs the event-driven engine and ignores %s",
				strings.Join(ignored, ", ")))
		}
	}
	if *grid {
		single := map[string]bool{
			"degree": true, "policy": true, "capacity": true, "initsoc": true,
			"minsoc": true, "low": true, "high": true, "exponent": true,
			"cutoff": true, "idle": true, "dropdead": true, "rejoin": true,
			"ckptdir": true, "gt": true, "gs": true, "eval": true,
			"fhorizon": true, "fnoise": true,
		}
		var ignored []string
		flag.Visit(func(f *flag.Flag) {
			if single[f.Name] {
				ignored = append(ignored, "-"+f.Name)
			}
		})
		if len(ignored) > 0 {
			usageError(fmt.Sprintf("-grid searches the schedule on the standard grid world and ignores %s",
				strings.Join(ignored, ", ")))
		}
	}

	runErr := run(runConfig{
		nodes: *nodes, degree: *degree, rounds: *rounds, period: *period,
		peak: *peak, traceKind: *traceKin, traceCSV: *traceCSV, policyKind: *policyK,
		fhorizon: *fhorizon, fnoise: *fnoise,
		capacity: *capacity, initSoC: *initSoC,
		minSoC: *minSoC, lowSoC: *lowSoC, highSoC: *highSoC, exponent: *exponent,
		cutoff: *cutoff, idle: *idle, dropDead: *dropDead,
		rejoin: *rejoin, ckptDir: *ckptDir,
		grid:   *grid,
		async:  *asyncRun,
		engine: *engine,
		gt:     *gt, gs: *gs, lr: *lr, batch: *batch, steps: *steps,
		evalInt: *evalInt, seed: *seed,
		probe: probe,
	})
	if sink != nil {
		if err := sink.Close(); err != nil && runErr == nil {
			runErr = fmt.Errorf("closing telemetry sink: %w", err)
		}
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "error:", runErr)
		os.Exit(1)
	}
	// The audit verdict comes after the sink chain closed: Close runs the
	// auditor's end-of-stream checks (run_end present, no round left open).
	if auditor != nil {
		fmt.Fprint(os.Stderr, auditor.Summary())
		if !auditor.Ok() {
			os.Exit(1)
		}
	}
}

// usageError reports a flag-validation failure and exits with the
// conventional usage status.
func usageError(msg string) {
	fmt.Fprintln(os.Stderr, "error:", msg)
	fmt.Fprintln(os.Stderr, "run with -h for usage")
	os.Exit(2)
}

// runConfig carries the parsed flag values into run; field names mirror the
// flags, so the call site assigns by name instead of threading two dozen
// positional parameters.
type runConfig struct {
	nodes, degree, rounds, period   int
	peak                            float64
	traceKind, traceCSV, policyKind string
	fhorizon                        int
	fnoise                          float64
	capacity, initSoC               float64
	minSoC, lowSoC, highSoC         float64
	exponent, cutoff, idle          float64
	dropDead                        bool
	rejoin, ckptDir                 string
	grid                            bool
	async                           bool
	engine                          string
	gt, gs                          int
	lr                              float64
	batch, steps, evalInt           int
	seed                            uint64
	probe                           *obs.Probe
}

// mpcReserveSoC is the HorizonPlan safety margin: the planned trajectory
// keeps this much capacity above the brown-out cutoff.
const mpcReserveSoC = 0.05

// policySpec is one -policy registry entry: a summary line for the usage
// text, whether the policy consumes the forecast knobs, and its builder.
type policySpec struct {
	summary string
	mpc     bool
	build   func(c runConfig) (core.Policy, error)
}

// policyRegistry maps -policy names to their builders. Policies read
// battery state through the engine's round context, so builders need only
// flag values — never the fleet.
var policyRegistry = map[string]policySpec{
	"proportional": {summary: "train with probability SoC^-exponent (charge-aware Eq. 5)",
		build: func(c runConfig) (core.Policy, error) { return harvest.NewSoCProportional(c.exponent) }},
	"threshold": {summary: "train whenever SoC >= -minsoc",
		build: func(c runConfig) (core.Policy, error) { return harvest.NewSoCThreshold(c.minSoC) }},
	"hysteresis": {summary: "go dormant below -low, resume above -high",
		build: func(c runConfig) (core.Policy, error) { return harvest.NewSoCHysteresis(c.nodes, c.lowSoC, c.highSoC) }},
	"mpc": {summary: "plan over an oracle forecast of the trace (-fhorizon, -fnoise)", mpc: true,
		build: func(runConfig) (core.Policy, error) { return harvest.NewHorizonPlan(mpcReserveSoC) }},
	"mpc-persist": {summary: "plan over a learned tomorrow-like-today forecast (-fhorizon)", mpc: true,
		build: func(runConfig) (core.Policy, error) { return harvest.NewHorizonPlan(mpcReserveSoC) }},
}

// policyNames returns the registry's keys in stable order for error text.
func policyNames() string {
	names := make([]string, 0, len(policyRegistry))
	for name := range policyRegistry {
		names = append(names, name)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// usage prints the flag defaults plus the scenario list: which trace and
// policy combinations exist and what they model.
func usage() {
	out := flag.CommandLine.Output()
	fmt.Fprintf(out, `harvestsim simulates decentralized learning on an intermittently-powered
fleet: per-node batteries, an ambient harvest trace, a charge-aware
participation policy, and (optionally) brown-out-aware topology dropout.

Usage:

  harvestsim [flags]

Traces (-trace):
  diurnal   solar sinusoid; each node's phase is its longitude, so the
            sun sweeps the fleet and nodes train in waves (-peak, -period)
  constant  steady trickle of -peak x mean training cost per round;
            -peak 0 is the paper's no-recharge setting
  markov    two-state on/off chain per node: bursty ambient sources (RF,
            wind); on-state harvest is -peak x mean training cost
  csv       replay a recorded per-node trace from -tracefile
            (CSV rows: round,node,harvest_wh)

Policies (-policy):
  proportional  train with probability SoC^-exponent (charge-aware Eq. 5)
  threshold     train whenever SoC >= -minsoc
  hysteresis    go dormant below -low, resume above -high
  mpc           forecast-aware MPC: plan a greedy training knapsack over an
                oracle forecast of the trace (-fhorizon rounds, default one
                -period day; -fnoise corrupts the oracle), execute the first
                decision, replan next round
  mpc-persist   the same planner over a learned forecast: tomorrow looks
                like today (per-node persistence of observed arrivals)

Rejoin rules (-rejoin, with -dropdead):
  stale    resume from parameters frozen at death (baseline)
  restore  resume from the freshest aggregated state in the live
           neighborhood (own durable snapshot when isolated)
  catchup  staleness-discounted blend: 2^(-staleness/2) of the snapshot,
           the rest from live neighbors' mean

Scenarios:

  harvestsim                                   # 96-node solar fleet
  harvestsim -trace markov -policy hysteresis  # bursty RF-powered fleet
  harvestsim -trace constant -peak 0           # no recharge (paper setting)
  harvestsim -trace csv -tracefile solar.csv   # replay a recorded trace
  harvestsim -dropdead -cutoff 0.25 -idle 0.2  # brown-outs silence radios
  harvestsim -dropdead -cutoff 0.3 -idle 0.25 -rejoin catchup
                                               # checkpoint/restore on rejoin
  harvestsim -policy mpc -cutoff 0.25 -idle 0.2 -dropdead
                                               # plan against the sun: MPC
  harvestsim -policy mpc -fnoise 0.3           # ... with a noisy forecast
  harvestsim -policy mpc-persist               # ... with a learned forecast
  harvestsim -grid -trace diurnal              # Γ-schedule search (4x4 grid)
  harvestsim -grid -trace constant -peak 0     # ... under a fixed budget
  harvestsim -async -cutoff 0.25 -idle 0.2     # event-driven engine: solved
                                               # wake/brown-out crossings
  harvestsim -async -telemetry -audit          # ... with the live auditor
  harvestsim -telemetry -events run.jsonl      # live progress + JSONL events
  harvestsim -telemetry -pprof localhost:6060  # ... with pprof/expvar served

Flags:

`)
	flag.PrintDefaults()
}

// buildTrace constructs the ambient trace selected by -trace from the
// CLI's trace parameters; shared by the round and event-driven paths.
func buildTrace(c runConfig, nodes int, meanTrainWh float64) (harvest.Trace, error) {
	switch c.traceKind {
	case "diurnal":
		return harvest.NewDiurnal(c.peak*meanTrainWh, c.period, harvest.LongitudePhase(nodes))
	case "constant":
		return harvest.Constant{Wh: c.peak * meanTrainWh}, nil
	case "markov":
		return harvest.NewMarkovOnOff(nodes, c.peak*meanTrainWh, 0.25, 0.35, c.seed)
	case "csv":
		if c.traceCSV == "" {
			return nil, fmt.Errorf("-trace csv needs -tracefile")
		}
		fh, err := os.Open(c.traceCSV)
		if err != nil {
			return nil, err
		}
		defer fh.Close()
		replay, err := harvest.ReadReplay(fh)
		if err != nil {
			return nil, err
		}
		if replay.Nodes() < nodes {
			return nil, fmt.Errorf("replay covers %d nodes, fleet has %d", replay.Nodes(), nodes)
		}
		return replay, nil
	default:
		return nil, fmt.Errorf("unknown trace %q", c.traceKind)
	}
}

func run(c runConfig) error {
	if c.grid {
		return runGrid(c)
	}
	if c.async {
		return runAsyncHarvest(c)
	}
	// Unpack by name; the body reads like the flag list. The per-policy
	// knobs (minsoc, low/high, exponent) stay on c — the registry builders
	// read them there.
	nodes, degree, rounds, period := c.nodes, c.degree, c.rounds, c.period
	traceKind, policyKind := c.traceKind, c.policyKind
	capacity, initSoC := c.capacity, c.initSoC
	cutoff, idle, dropDead := c.cutoff, c.idle, c.dropDead
	rejoin, ckptDir := c.rejoin, c.ckptDir
	gt, gs, lr := c.gt, c.gs, c.lr
	batch, steps, evalInt, seed := c.batch, c.steps, c.evalInt, c.seed
	g, err := graph.Regular(nodes, degree, seed)
	if err != nil {
		return err
	}
	weights := graph.Metropolis(g)

	data := dataset.SyntheticConfig{Classes: 10, Dim: 32, Train: nodes * 40, Test: 640, Noise: 2.5, Seed: seed}
	train, testAll, err := dataset.Generate(data)
	if err != nil {
		return err
	}
	part, err := dataset.ShardPartition(train, nodes, 2, seed)
	if err != nil {
		return err
	}
	_, test := testAll.Split(testAll.Len() / 2)

	devices := energy.AssignDevices(nodes, energy.Devices())
	workload := energy.CIFAR10Workload()
	meanTrainWh := energy.NetworkRoundWh(nodes, energy.Devices(), workload) / float64(nodes)

	trace, err := buildTrace(c, nodes, meanTrainWh)
	if err != nil {
		return err
	}

	fleet, err := harvest.NewEngine(c.engine, devices, workload, trace, harvest.Options{
		CapacityRounds: capacity,
		InitialSoC:     initSoC,
		// Options treats InitialSoC 0 as "unset"; the flag's 0 means empty.
		StartEmpty: initSoC == 0,
		CutoffSoC:  cutoff,
		IdleWh:     idle * meanTrainWh,
	})
	if err != nil {
		return err
	}

	spec, ok := policyRegistry[policyKind]
	if !ok {
		return fmt.Errorf("unknown policy %q (want %s)", policyKind, policyNames())
	}
	if !spec.mpc && (c.fhorizon != 0 || c.fnoise != 0) {
		return fmt.Errorf("-fhorizon/-fnoise only apply to the mpc policies, not -policy %s", policyKind)
	}
	policy, err := spec.build(c)
	if err != nil {
		return err
	}
	// The mpc policies plan over a forecast of the run's own trace: exact
	// (oracle), corrupted (-fnoise), or learned (persistence). The window
	// defaults to one simulated day.
	var forecaster harvest.Forecaster
	fhorizon := c.fhorizon
	if spec.mpc {
		if fhorizon < 0 {
			return fmt.Errorf("negative forecast window %d", fhorizon)
		}
		if fhorizon == 0 {
			fhorizon = period
		}
		switch {
		case policyKind == "mpc-persist":
			if c.fnoise != 0 {
				return fmt.Errorf("-fnoise corrupts the oracle of -policy mpc; mpc-persist forecasts from observations")
			}
			forecaster, err = harvest.NewPersistence(nodes, period)
		case c.fnoise > 0:
			forecaster, err = harvest.NewNoisyOracle(trace, c.fnoise, seed)
		case c.fnoise < 0:
			return fmt.Errorf("negative forecast noise %g", c.fnoise)
		default:
			forecaster, err = harvest.NewOracle(trace)
		}
		if err != nil {
			return err
		}
	}

	// The checkpoint/rejoin subsystem only makes sense when dead nodes
	// freeze, i.e. under -dropdead.
	var mgr *checkpoint.Manager
	if rejoin != "" {
		if !dropDead {
			return fmt.Errorf("-rejoin requires -dropdead")
		}
		rule, err := checkpoint.RuleByName(rejoin)
		if err != nil {
			return err
		}
		var store checkpoint.Store
		if ckptDir != "" {
			if store, err = checkpoint.NewFileStore(ckptDir, nodes); err != nil {
				return err
			}
		}
		if mgr, err = checkpoint.NewManager(nodes, store, rule); err != nil {
			return err
		}
	} else if ckptDir != "" {
		return fmt.Errorf("-ckptdir needs -rejoin")
	}

	// The pair was validated in main; this resolves it.
	schedule, err := core.ScheduleFromGammaFlags(gt, gs)
	if err != nil {
		return err
	}

	res, err := sim.Run(sim.Config{
		Graph: g, Weights: weights,
		Algo:   core.Algorithm{Label: "harvest-" + policy.Name(), Schedule: schedule, Policy: policy},
		Rounds: rounds,
		ModelFactory: func(node int, r *rng.RNG) *nn.Network {
			return nn.LogisticRegression(32, 10, r)
		},
		LR: lr, BatchSize: batch, LocalSteps: steps,
		Partition: part, Test: test,
		EvalEvery: evalInt, EvalSubsample: 320,
		Devices: devices, Workload: workload,
		// The CLI reads only the streamed per-round SoC statistics and the
		// final snapshot, so TrackSoC (an O(nodes) allocation per round)
		// stays off.
		Harvest:  fleet,
		Forecast: forecaster, ForecastHorizon: fhorizon,
		DropDeadNodes: dropDead,
		Checkpoint:    mgr,
		Probe:         c.probe,
		Seed:          seed,
	})
	if err != nil {
		return err
	}

	commModel := "route-through-dead"
	if dropDead {
		commModel = "drop-and-renormalize"
	}
	rejoinModel := "off"
	if mgr != nil {
		rejoinModel = mgr.Rule().Name()
		if ckptDir != "" {
			rejoinModel += " (snapshots in " + ckptDir + ")"
		}
	}
	policyModel := policy.Name()
	if forecaster != nil {
		policyModel += fmt.Sprintf(" [%s, window %d]", forecaster.Name(), fhorizon)
	}
	fmt.Printf("harvest fleet: %d nodes, %d-regular, %d rounds | trace %s | policy %s | capacity %g rounds | dead nodes: %s | rejoin: %s\n",
		nodes, degree, rounds, fleet.TraceName(), policyModel, capacity, commModel, rejoinModel)

	// The wave: per-round participation, fleet charge, and liveness over
	// time.
	var participation, meanSoC, liveCount []float64
	for _, m := range res.History {
		participation = append(participation, float64(m.TrainedCount))
		meanSoC = append(meanSoC, m.MeanSoC)
		liveCount = append(liveCount, float64(m.LiveCount))
	}
	fmt.Printf("participation/round: %s\n", report.Sparkline(participation))
	fmt.Printf("fleet mean SoC:      %s\n", report.Sparkline(meanSoC))
	fmt.Printf("live nodes/round:    %s\n", report.Sparkline(liveCount))

	ev := report.NewTable("evaluations",
		"round", "mean acc %", "std %", "mean SoC", "min SoC", "depleted", "live", "eff deg", "components", "cum harvest Wh")
	for _, m := range res.Evaluations() {
		ev.AddRowf("%d|%.2f|%.2f|%.3f|%.3f|%d|%d|%.2f|%d|%.4f",
			m.Round+1, m.MeanAcc*100, m.StdAcc*100, m.MeanSoC, m.MinSoC, m.Depleted,
			m.LiveCount, m.MeanLiveDegree, m.LiveComponents, m.CumHarvestWh)
	}
	ev.Render(os.Stdout)

	trainSlots := core.CountTrainRounds(schedule, rounds)
	tb := report.NewTable("per-node state of charge and participation",
		"node", "device", "phase", "trained", "particip %", "final SoC %", "harvested mWh", "consumed mWh")
	// Longitude phase only exists for the diurnal trace; other sources have
	// no per-node offset.
	phaseCell := func(int) string { return "-" }
	if traceKind == "diurnal" {
		phase := harvest.LongitudePhase(nodes)
		phaseCell = func(i int) string { return fmt.Sprintf("%.3f", phase(i)) }
	}
	for i := 0; i < nodes; i++ {
		tb.AddRowf("%d|%s|%s|%d|%.1f|%.1f|%.3f|%.3f",
			i, devices[i].Name, phaseCell(i), res.TrainedRounds[i],
			100*float64(res.TrainedRounds[i])/float64(trainSlots),
			100*res.FinalSoC[i], 1000*fleet.NodeHarvestedWh(i), 1000*fleet.NodeConsumedWh(i))
	}
	tb.Render(os.Stdout)

	trained := 0
	for _, tr := range res.TrainedRounds {
		trained += tr
	}
	fmt.Printf("\nfinal: %.2f%% ± %.2f | participation %.1f%% | harvested %.4f Wh, consumed %.4f Wh, wasted %.4f Wh",
		res.FinalMeanAcc*100, res.FinalStdAcc*100,
		100*float64(trained)/float64(nodes*trainSlots),
		res.TotalHarvestWh, fleet.ConsumedWh(), fleet.WastedWh())
	if dropDead {
		fmt.Printf(" | dropped msgs %d", res.TotalDroppedSends)
	}
	if mgr != nil {
		fmt.Printf(" | revivals %d, restores %d, mean staleness %.1f",
			res.TotalRevivals, res.TotalRestores, res.MeanRejoinStaleness())
	}
	fmt.Println()
	return nil
}

// runAsyncHarvest runs the event-driven intermittency engine (-async):
// the same fleet shape, trace, policy, and schedule flags as the round
// engine, but batteries evolve on a continuous virtual clock — nodes
// sleep until their solved charge-arrival crossing, and brown-outs
// interrupt in-flight training steps at the exact cutoff crossing. One
// trace round spans the fleet-mean training-step duration, so -rounds
// covers the same stretch of the ambient process as the round engine.
func runAsyncHarvest(c runConfig) error {
	g, err := graph.Regular(c.nodes, c.degree, c.seed)
	if err != nil {
		return err
	}
	data := dataset.SyntheticConfig{Classes: 10, Dim: 32, Train: c.nodes * 40, Test: 640, Noise: 2.5, Seed: c.seed}
	train, testAll, err := dataset.Generate(data)
	if err != nil {
		return err
	}
	part, err := dataset.ShardPartition(train, c.nodes, 2, c.seed)
	if err != nil {
		return err
	}
	_, test := testAll.Split(testAll.Len() / 2)

	devices := energy.AssignDevices(c.nodes, energy.Devices())
	workload := energy.CIFAR10Workload()
	meanTrainWh := energy.NetworkRoundWh(c.nodes, energy.Devices(), workload) / float64(c.nodes)
	roundSec := 0.0
	for _, d := range devices {
		roundSec += d.TrainRoundSeconds(workload)
	}
	roundSec /= float64(len(devices))

	trace, err := buildTrace(c, c.nodes, meanTrainWh)
	if err != nil {
		return err
	}
	spec, ok := policyRegistry[c.policyKind]
	if !ok {
		return fmt.Errorf("unknown policy %q (want %s)", c.policyKind, policyNames())
	}
	if c.policyKind == "mpc-persist" {
		return fmt.Errorf("-policy mpc-persist learns from per-round observations, which the event-driven engine does not produce; use -policy mpc")
	}
	if !spec.mpc && (c.fhorizon != 0 || c.fnoise != 0) {
		return fmt.Errorf("-fhorizon/-fnoise only apply to the mpc policies, not -policy %s", c.policyKind)
	}
	policy, err := spec.build(c)
	if err != nil {
		return err
	}
	var forecaster harvest.Forecaster
	fhorizon := c.fhorizon
	if spec.mpc {
		switch {
		case fhorizon < 0:
			return fmt.Errorf("negative forecast window %d", fhorizon)
		case c.fnoise < 0:
			return fmt.Errorf("negative forecast noise %g", c.fnoise)
		}
		if fhorizon == 0 {
			fhorizon = c.period
		}
		if c.fnoise > 0 {
			forecaster, err = harvest.NewNoisyOracle(trace, c.fnoise, c.seed)
		} else {
			forecaster, err = harvest.NewOracle(trace)
		}
		if err != nil {
			return err
		}
	}
	schedule, err := core.ScheduleFromGammaFlags(c.gt, c.gs)
	if err != nil {
		return err
	}

	horizon := float64(c.rounds) * roundSec
	res, err := async.Run(async.Config{
		Graph:   g,
		Algo:    core.Algorithm{Label: "async-harvest-" + policy.Name(), Schedule: schedule, Policy: policy},
		Horizon: horizon,
		ModelFactory: func(node int, r *rng.RNG) *nn.Network {
			return nn.LogisticRegression(32, 10, r)
		},
		LR: c.lr, BatchSize: c.batch, LocalSteps: c.steps,
		Partition: part, Test: test,
		Devices: devices, Workload: workload,
		Trace: trace,
		FleetOptions: harvest.Options{
			CapacityRounds: c.capacity,
			InitialSoC:     c.initSoC,
			StartEmpty:     c.initSoC == 0,
			CutoffSoC:      c.cutoff,
			IdleWh:         c.idle * meanTrainWh,
		},
		RoundSeconds: roundSec,
		Forecast:     forecaster, ForecastHorizon: fhorizon,
		EvalEverySeconds: float64(c.evalInt) * roundSec,
		EvalSubsample:    320,
		Probe:            c.probe,
		Seed:             c.seed,
	})
	if err != nil {
		return err
	}

	policyModel := policy.Name()
	if forecaster != nil {
		policyModel += fmt.Sprintf(" [%s, window %d]", forecaster.Name(), fhorizon)
	}
	fmt.Printf("event-driven harvest fleet: %d nodes, %d-regular, horizon %.0fs (%d trace rounds of %.2fs) | trace %s | policy %s | capacity %g rounds\n",
		c.nodes, c.degree, horizon, c.rounds, roundSec, trace.Name(), policyModel, c.capacity)

	var curve []float64
	tb := report.NewTable("evaluations",
		"virtual time s", "mean acc %", "std %", "steps", "train Wh")
	for _, s := range res.History {
		curve = append(curve, s.MeanAcc)
		tb.AddRowf("%.0f|%.2f|%.2f|%d|%.4f",
			s.Time, s.MeanAcc*100, s.StdAcc*100, s.StepsTotal, s.TrainWh)
	}
	tb.Render(os.Stdout)
	fmt.Printf("accuracy trend: %s\n", report.Sparkline(curve))

	steps, trained := 0, 0
	for i := range res.StepsPerNode {
		steps += res.StepsPerNode[i]
		trained += res.TrainedSteps[i]
	}
	fmt.Printf("final: %.2f%% ± %.2f | %d steps (%d trained), %d gossips (%d dropped) | %d brown-outs, %.1f%% node-time down | harvested %.4f Wh, consumed %.4f Wh, wasted %.4f Wh\n",
		res.FinalMeanAcc*100, res.FinalStdAcc*100, steps, trained,
		res.GossipsSent, res.DroppedGossips,
		res.Brownouts, 100*res.BrownoutShare,
		res.HarvestedWh, res.ConsumedWh, res.WastedWh)
	return nil
}

// runGrid runs the harvest-aware Γ-schedule search (-grid): the 4x4
// Γtrain x Γsync grid under the regime selected by -trace, every cell a
// full harvest-coupled simulation on a fresh fleet, cells fanned out
// across workers. The -peak, -period, and -seed flags parameterize the
// regime; topology, data, and fleet shape use the experiment package's
// standard grid world, so results line up with experiments.TableGammaHarvest.
func runGrid(c runConfig) error {
	regime, err := gridRegime(c)
	if err != nil {
		return err
	}
	res, err := experiments.RunGammaGrid(experiments.Options{
		Nodes: c.nodes, Rounds: c.rounds, Seed: c.seed,
		LR: c.lr, BatchSize: c.batch, LocalSteps: c.steps,
		FleetEngine: c.engine,
		Probe:       c.probe,
	}, regime)
	if err != nil {
		return err
	}
	fmt.Printf("Γ-schedule grid search: %d nodes, %d rounds | regime %s | trace %s\n\n",
		c.nodes, c.rounds, res.Regime, res.Trace)
	res.Render(os.Stdout)
	return nil
}

// gridRegime maps the -trace flag onto a grid regime built from the CLI's
// own trace parameters. Stateful traces are constructed fresh per cell;
// the replay trace is stateless and safely shared.
func gridRegime(c runConfig) (experiments.GammaRegime, error) {
	switch c.traceKind {
	case "diurnal":
		return experiments.GammaRegime{Name: "diurnal", Trace: func(o experiments.Options, mean float64) (harvest.Trace, error) {
			return harvest.NewDiurnal(c.peak*mean, c.period, harvest.LongitudePhase(o.Nodes))
		}}, nil
	case "constant":
		name := "constant"
		if c.peak == 0 {
			name = "fixed-budget" // the paper's Figure 3 setting
		}
		return experiments.GammaRegime{Name: name, Trace: func(_ experiments.Options, mean float64) (harvest.Trace, error) {
			return harvest.Constant{Wh: c.peak * mean}, nil
		}}, nil
	case "markov":
		return experiments.GammaRegime{Name: "markov", Trace: func(o experiments.Options, mean float64) (harvest.Trace, error) {
			return harvest.NewMarkovOnOff(o.Nodes, c.peak*mean, 0.25, 0.35, o.Seed)
		}}, nil
	case "csv":
		if c.traceCSV == "" {
			return experiments.GammaRegime{}, fmt.Errorf("-trace csv needs -tracefile")
		}
		fh, err := os.Open(c.traceCSV)
		if err != nil {
			return experiments.GammaRegime{}, err
		}
		defer fh.Close()
		replay, err := harvest.ReadReplay(fh)
		if err != nil {
			return experiments.GammaRegime{}, err
		}
		if replay.Nodes() < c.nodes {
			return experiments.GammaRegime{}, fmt.Errorf("replay covers %d nodes, fleet has %d", replay.Nodes(), c.nodes)
		}
		return experiments.GammaRegime{Name: "replay", Trace: func(experiments.Options, float64) (harvest.Trace, error) {
			return replay, nil
		}}, nil
	default:
		return experiments.GammaRegime{}, fmt.Errorf("unknown trace %q", c.traceKind)
	}
}
