// Command energytrace regenerates Table 2: the per-device energy traces
// (training energy per round and battery-bounded round budgets) built with
// the paper's methodology — Burnout power draw, AI-Benchmark inference
// times scaled by model size / batch / local steps, and the FedScale 3x
// training multiplier.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	var detail = flag.Bool("detail", false, "also print the derivation of every trace value")
	flag.Parse()

	o := experiments.Options{Out: os.Stdout}
	experiments.Table2(o)

	cifar, femnist := energy.CIFAR10Workload(), energy.FEMNISTWorkload()
	perRoundCIFAR := energy.NetworkRoundWh(experiments.PaperNodes, energy.Devices(), cifar)
	perRoundFEMNIST := energy.NetworkRoundWh(experiments.PaperNodes, energy.Devices(), femnist)
	fmt.Printf("\nnetwork of %d nodes, one training round: CIFAR-10 %.4f Wh, FEMNIST %.4f Wh\n",
		experiments.PaperNodes, perRoundCIFAR, perRoundFEMNIST)
	fmt.Printf("D-PSGD totals: CIFAR-10 %.2f Wh over %d rounds (paper: 1510.04), FEMNIST %.2f Wh over %d rounds (paper: 14914.38)\n",
		perRoundCIFAR*float64(experiments.PaperRoundsCIFAR), experiments.PaperRoundsCIFAR,
		perRoundFEMNIST*float64(experiments.PaperRoundsFEMNIST), experiments.PaperRoundsFEMNIST)

	if *detail {
		tb := report.NewTable("\nTrace derivation (Eq. 2: E = P * Δ; Δ = 3 x inference x params-ratio x batch x steps)",
			"Device", "Power W", "MobileNet-v2 infer ms", "CIFAR Δ s", "FEMNIST Δ s", "Battery Wh")
		for _, d := range energy.Devices() {
			tb.AddRowf("%s|%.1f|%.1f|%.2f|%.2f|%.2f",
				d.Name, d.PowerWatts, d.InferenceSeconds*1000,
				d.TrainRoundSeconds(cifar), d.TrainRoundSeconds(femnist), d.BatteryWh)
		}
		tb.Render(os.Stdout)
	}
}
