// Command obstool is the offline side of the observability layer
// (internal/obs + internal/obs/analyze): it turns `go test -bench`
// output into the committed BENCH_*.json perf-trajectory snapshots,
// validates JSONL telemetry event streams, audits and summarizes runs,
// diffs two runs by manifest, and gates benchmark regressions.
//
//	go test -run '^$' -bench 'HarvestFleetRound|HorizonPlan' . | obstool bench -o BENCH_6.json -label "PR 6"
//	obstool events run.jsonl        # validate a harvestsim -events stream
//	obstool report run.jsonl        # audit + summarize one run
//	obstool diff a.jsonl b.jsonl    # compare two runs by manifest
//	obstool regress BENCH_6.json BENCH_7.json   # perf gate
//
// All subcommands exit 0 on success, 1 on malformed input or a failed
// audit/gate, and 2 on a usage error — matching the other cmd/ binaries.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/obs"
	"repro/internal/obs/analyze"
)

func main() {
	if len(os.Args) < 2 {
		usageError("need a subcommand: bench | events | report | diff | regress")
	}
	var err error
	switch os.Args[1] {
	case "bench":
		err = runBench(os.Args[2:])
	case "events":
		err = runEvents(os.Args[2:])
	case "report":
		err = runReport(os.Args[2:])
	case "diff":
		err = runDiff(os.Args[2:])
	case "regress":
		err = runRegress(os.Args[2:])
	case "-h", "-help", "--help":
		usage(os.Stderr)
		return
	default:
		usageError(fmt.Sprintf("unknown subcommand %q (want bench, events, report, diff, or regress)", os.Args[1]))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

// usageError reports a flag-validation failure and exits with the
// conventional usage status.
func usageError(msg string) {
	fmt.Fprintln(os.Stderr, "error:", msg)
	fmt.Fprintln(os.Stderr, "run with -h for usage")
	os.Exit(2)
}

func usage(out io.Writer) {
	fmt.Fprint(out, `obstool processes the simulator's telemetry artifacts (internal/obs).

Usage:

  go test -run '^$' -bench ... . | obstool bench [-o file.json] [-label text]
      Parse benchmark output from stdin and write the BENCH_*.json
      perf-trajectory snapshot (name-sorted results, Go version, git
      revision). -o defaults to stdout.

  obstool events file.jsonl
      Validate a JSONL telemetry event stream (harvestsim -events): every
      line a well-formed event of a known kind, opening with a run_start
      that carries a manifest config hash, closing with a run_end, rounds
      properly bracketed and strictly increasing. Prints a per-kind
      summary. "-" reads stdin.

  obstool report [-md] file.jsonl
      Audit a stream against the analyze invariants (energy conservation,
      brownout/revival alternation, counter monotonicity, phase-time
      accounting) and print a run summary: throughput, phase breakdown,
      SoC timelines, outage episodes, energy totals. -md emits markdown.
      Exits 1 when the audit finds violations. "-" reads stdin.

  obstool diff a.jsonl b.jsonl
      Compare two runs by their manifests and reconstructed reports:
      flags config-hash/seed/revision drift and prints accuracy, energy,
      and wall-time deltas.

  obstool regress [-tol 0.2] [-metric ns/node-round] old.json new.json
      Compare two BENCH_*.json snapshots and exit 1 when a tracked metric
      regressed past the tolerance. Benchmarks present on only one side
      are warnings, never failures. -metric may repeat.
`)
}

// runBench parses `go test -bench` output on stdin into the committed
// BENCH_*.json format.
func runBench(args []string) error {
	fs := flag.NewFlagSet("obstool bench", flag.ExitOnError)
	out := fs.String("o", "", "output file (default stdout)")
	label := fs.String("label", "", "snapshot label recorded in the file (e.g. \"PR 6\")")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		usageError("bench reads stdin and takes no positional arguments")
	}
	results, err := obs.ParseBench(os.Stdin)
	if err != nil {
		return err
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		fh, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer fh.Close()
		w = fh
	}
	if err := obs.WriteBenchJSON(w, *label, results); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "parsed %d benchmark results\n", len(results))
	return nil
}

// runEvents validates a JSONL event stream and prints its summary.
func runEvents(args []string) error {
	fs := flag.NewFlagSet("obstool events", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		usageError("events takes exactly one file argument (\"-\" for stdin)")
	}
	r := io.Reader(os.Stdin)
	if path := fs.Arg(0); path != "-" {
		fh, err := os.Open(path)
		if err != nil {
			return err
		}
		defer fh.Close()
		r = fh
	}
	stats, err := obs.ValidateEvents(r)
	if err != nil {
		return err
	}
	kinds := make([]string, 0, len(stats.Kinds))
	for k := range stats.Kinds {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Printf("valid: %d events, %d rounds\n", stats.Events, stats.Rounds)
	for _, k := range kinds {
		fmt.Printf("  %-13s %d\n", k, stats.Kinds[k])
	}
	return nil
}

// openArg opens a positional file argument, with "-" meaning stdin.
func openArg(path string) (io.ReadCloser, error) {
	if path == "-" {
		return io.NopCloser(os.Stdin), nil
	}
	return os.Open(path)
}

// runReport audits one stream and prints its reconstructed run summary.
func runReport(args []string) error {
	fs := flag.NewFlagSet("obstool report", flag.ExitOnError)
	md := fs.Bool("md", false, "render the report as markdown")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		usageError("report takes exactly one file argument (\"-\" for stdin)")
	}
	fh, err := openArg(fs.Arg(0))
	if err != nil {
		return err
	}
	defer fh.Close()
	// One decode pass feeds both consumers: the auditor and the report
	// builder.
	events, err := analyze.ReadEvents(fh)
	if err != nil {
		return err
	}
	auditor := analyze.NewAuditor()
	for _, ev := range events {
		auditor.Emit(ev)
	}
	auditor.Close()
	rep := analyze.FromEvents(events)
	if *md {
		rep.WriteMarkdown(os.Stdout)
	} else {
		rep.WriteText(os.Stdout)
	}
	fmt.Println()
	fmt.Print(auditor.Summary())
	if !auditor.Ok() {
		return fmt.Errorf("audit found %d violation(s)", len(auditor.Violations())+auditor.Overflow())
	}
	return nil
}

// runDiff compares two runs by manifest and reconstructed report.
func runDiff(args []string) error {
	fs := flag.NewFlagSet("obstool diff", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		usageError("diff takes exactly two stream file arguments")
	}
	reports := make([]*analyze.Report, 2)
	for i := 0; i < 2; i++ {
		fh, err := openArg(fs.Arg(i))
		if err != nil {
			return err
		}
		rep, err := analyze.ReadReport(fh)
		fh.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", fs.Arg(i), err)
		}
		reports[i] = rep
	}
	d := analyze.DiffReports(reports[0], reports[1])
	d.WriteText(os.Stdout, fs.Arg(0), fs.Arg(1))
	return nil
}

// runRegress gates a new bench snapshot against an old one.
func runRegress(args []string) error {
	fs := flag.NewFlagSet("obstool regress", flag.ExitOnError)
	tol := fs.Float64("tol", 0.2, "allowed relative slowdown before a metric counts as regressed")
	var metrics metricList
	fs.Var(&metrics, "metric", "tracked metric to compare (repeatable; default ns/node-round)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		usageError("regress takes exactly two BENCH_*.json file arguments (old new)")
	}
	files := make([]obs.BenchFile, 2)
	for i := 0; i < 2; i++ {
		fh, err := openArg(fs.Arg(i))
		if err != nil {
			return err
		}
		bf, err := obs.ReadBenchJSON(fh)
		fh.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", fs.Arg(i), err)
		}
		files[i] = bf
	}
	res := analyze.CompareBench(files[0], files[1], metrics, *tol)
	res.WriteText(os.Stdout, fs.Arg(0), fs.Arg(1), *tol)
	if res.Regressions > 0 {
		return fmt.Errorf("%d tracked metric(s) regressed past %.0f%%", res.Regressions, 100**tol)
	}
	return nil
}

// metricList is a repeatable -metric flag; nil means the default set.
type metricList []string

func (m *metricList) String() string { return fmt.Sprint([]string(*m)) }
func (m *metricList) Set(v string) error {
	*m = append(*m, v)
	return nil
}
