// Command obstool is the offline side of the observability layer
// (internal/obs): it turns `go test -bench` output into the committed
// BENCH_*.json perf-trajectory snapshots and validates JSONL telemetry
// event streams.
//
//	go test -run '^$' -bench 'HarvestFleetRound|HorizonPlan' . | obstool bench -o BENCH_6.json -label "PR 6"
//	obstool events run.jsonl        # validate a harvestsim -events stream
//
// Both subcommands exit 0 on success, 1 on malformed input, and 2 on a
// usage error — matching the other cmd/ binaries.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usageError("need a subcommand: bench | events")
	}
	var err error
	switch os.Args[1] {
	case "bench":
		err = runBench(os.Args[2:])
	case "events":
		err = runEvents(os.Args[2:])
	case "-h", "-help", "--help":
		usage(os.Stderr)
		return
	default:
		usageError(fmt.Sprintf("unknown subcommand %q (want bench or events)", os.Args[1]))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

// usageError reports a flag-validation failure and exits with the
// conventional usage status.
func usageError(msg string) {
	fmt.Fprintln(os.Stderr, "error:", msg)
	fmt.Fprintln(os.Stderr, "run with -h for usage")
	os.Exit(2)
}

func usage(out io.Writer) {
	fmt.Fprint(out, `obstool processes the simulator's telemetry artifacts (internal/obs).

Usage:

  go test -run '^$' -bench ... . | obstool bench [-o file.json] [-label text]
      Parse benchmark output from stdin and write the BENCH_*.json
      perf-trajectory snapshot (name-sorted results, Go version, git
      revision). -o defaults to stdout.

  obstool events file.jsonl
      Validate a JSONL telemetry event stream (harvestsim -events): every
      line a well-formed event of a known kind, opening with a run_start
      that carries a manifest config hash, closing with a run_end. Prints
      a per-kind summary. "-" reads stdin.
`)
}

// runBench parses `go test -bench` output on stdin into the committed
// BENCH_*.json format.
func runBench(args []string) error {
	fs := flag.NewFlagSet("obstool bench", flag.ExitOnError)
	out := fs.String("o", "", "output file (default stdout)")
	label := fs.String("label", "", "snapshot label recorded in the file (e.g. \"PR 6\")")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		usageError("bench reads stdin and takes no positional arguments")
	}
	results, err := obs.ParseBench(os.Stdin)
	if err != nil {
		return err
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		fh, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer fh.Close()
		w = fh
	}
	if err := obs.WriteBenchJSON(w, *label, results); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "parsed %d benchmark results\n", len(results))
	return nil
}

// runEvents validates a JSONL event stream and prints its summary.
func runEvents(args []string) error {
	fs := flag.NewFlagSet("obstool events", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		usageError("events takes exactly one file argument (\"-\" for stdin)")
	}
	r := io.Reader(os.Stdin)
	if path := fs.Arg(0); path != "-" {
		fh, err := os.Open(path)
		if err != nil {
			return err
		}
		defer fh.Close()
		r = fh
	}
	stats, err := obs.ValidateEvents(r)
	if err != nil {
		return err
	}
	kinds := make([]string, 0, len(stats.Kinds))
	for k := range stats.Kinds {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Printf("valid: %d events, %d rounds\n", stats.Events, stats.Rounds)
	for _, k := range kinds {
		fmt.Printf("  %-13s %d\n", k, stats.Kinds[k])
	}
	return nil
}
