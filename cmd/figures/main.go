// Command figures regenerates every table and figure of the paper's
// evaluation section in one run, writing rendered text to stdout and CSV
// series into an output directory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	var (
		nodes  = flag.Int("nodes", 48, "nodes per experiment (paper: 256)")
		rounds = flag.Int("rounds", 64, "rounds per experiment (paper: 1000/3000)")
		seed   = flag.Uint64("seed", 42, "experiment seed")
		outDir = flag.String("out", "results", "directory for CSV series")
		paper  = flag.Bool("paper", false, "run at full paper scale (256 nodes; slow)")
	)
	flag.Parse()
	if *paper {
		*nodes = experiments.PaperNodes
		*rounds = experiments.PaperRoundsCIFAR
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fail(err)
	}
	o := experiments.Options{Nodes: *nodes, Rounds: *rounds, Seed: *seed, Out: os.Stdout}

	section("Table 1")
	experiments.Table1(o)
	section("Table 2")
	experiments.Table2(o)

	section("Figure 1")
	f1, err := experiments.Figure1(o)
	if err != nil {
		fail(err)
	}
	writeCSV(*outDir, "figure1.csv", []string{"round", "dpsgd_acc", "allreduce_acc"},
		f1.DPSGD.X, f1.DPSGD.Y, f1.AllReduce.Y)

	section("Figure 2")
	if err := experiments.Figure2(o); err != nil {
		fail(err)
	}

	section("Figure 3")
	if _, err := experiments.Figure3(o, nil); err != nil {
		fail(err)
	}

	section("Figure 4")
	f4, err := experiments.Figure4(o)
	if err != nil {
		fail(err)
	}
	var rds, accs, stds []float64
	for _, p := range f4.Points {
		rds = append(rds, float64(p.Round))
		accs = append(accs, p.MeanAcc)
		stds = append(stds, p.StdAcc)
	}
	writeCSV(*outDir, "figure4.csv", []string{"round", "mean_acc", "std_acc"}, rds, accs, stds)

	section("Figure 5")
	f5, err := experiments.Figure5(o, nil, nil)
	if err != nil {
		fail(err)
	}
	for _, a := range f5.Arms {
		name := fmt.Sprintf("figure5_%s_d%d_%s.csv", a.Dataset, a.Degree, sanitize(a.Algo))
		writeCSV(*outDir, name, []string{"round", "acc", "energy_wh"},
			a.AccVsRound.X, a.AccVsRound.Y, a.AccVsEnergy.X)
	}

	section("Figure 6")
	f6, err := experiments.Figure6(o, nil, nil)
	if err != nil {
		fail(err)
	}
	for _, a := range f6.Arms {
		name := fmt.Sprintf("figure6_%s_d%d_%s.csv", a.Dataset, a.Degree, sanitize(a.Algo))
		writeCSV(*outDir, name, []string{"energy_wh", "acc"}, a.AccVsEnergy.X, a.AccVsEnergy.Y)
	}

	section("Figure 7")
	if err := experiments.Figure7(o); err != nil {
		fail(err)
	}

	section("Table 3")
	t3 := experiments.Table3(o, f5)
	section("Table 4")
	t4 := experiments.Table4(o, f6)
	section("Section 5.1 fairness (extension)")
	if _, err := experiments.Section51Fairness(o); err != nil {
		fail(err)
	}
	section("Headline")
	experiments.SummaryHeadline(o, t3, t4)
	fmt.Printf("\nCSV series written to %s/\n", *outDir)
}

func section(name string) {
	fmt.Printf("\n===== %s =====\n", name)
}

func sanitize(s string) string {
	out := []rune{}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

func writeCSV(dir, name string, headers []string, cols ...[]float64) {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fail(err)
	}
	defer f.Close()
	if err := report.CSV(f, headers, cols...); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
