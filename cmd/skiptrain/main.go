// Command skiptrain runs a single decentralized-learning experiment from
// flags: any of the paper's five algorithms on either dataset stand-in,
// with the topology, schedule, and scale under CLI control.
//
// Examples:
//
//	skiptrain -algo dpsgd -dataset cifar -nodes 64 -rounds 100
//	skiptrain -algo skiptrain -gt 4 -gs 4 -degree 6
//	skiptrain -algo constrained -dataset femnist -nodes 48
//	skiptrain -exp fig1          # run a whole paper experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/async"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/sim"
)

func main() {
	var (
		algo    = flag.String("algo", "skiptrain", "dpsgd | skiptrain | constrained | greedy | allreduce | async | async-skiptrain")
		ds      = flag.String("dataset", "cifar", "cifar | femnist")
		nodes   = flag.Int("nodes", 48, "number of nodes (paper: 256)")
		degree  = flag.Int("degree", 6, "topology degree (paper: 6, 8, 10)")
		rounds  = flag.Int("rounds", 64, "total rounds T")
		gt      = flag.Int("gt", 0, "Γtrain (0 = tuned value for the degree)")
		gs      = flag.Int("gs", -1, "Γsync (-1 = tuned value for the degree)")
		lr      = flag.Float64("lr", 0.2, "learning rate η")
		batch   = flag.Int("batch", 16, "batch size |ξ|")
		steps   = flag.Int("steps", 8, "local steps E")
		seed    = flag.Uint64("seed", 42, "experiment seed")
		evalInt = flag.Int("eval", 8, "evaluate every N rounds")
		exp     = flag.String("exp", "", "run a full paper experiment instead: fig1|fig2|fig3|fig4|fig5|fig6|fig7|tables")
	)
	flag.Parse()

	if *exp != "" {
		if err := runExperiment(*exp, *nodes, *rounds, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}
	if err := runSingle(*algo, *ds, *nodes, *degree, *rounds, *gt, *gs, *lr, *batch, *steps, *seed, *evalInt); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func runExperiment(name string, nodes, rounds int, seed uint64) error {
	o := experiments.Options{Nodes: nodes, Rounds: rounds, Seed: seed, Out: os.Stdout}
	switch strings.ToLower(name) {
	case "fig1":
		_, err := experiments.Figure1(o)
		return err
	case "fig2":
		return experiments.Figure2(o)
	case "fig3":
		_, err := experiments.Figure3(o, nil)
		return err
	case "fig4":
		_, err := experiments.Figure4(o)
		return err
	case "fig5":
		_, err := experiments.Figure5(o, nil, nil)
		return err
	case "fig6":
		_, err := experiments.Figure6(o, nil, nil)
		return err
	case "fig7":
		return experiments.Figure7(o)
	case "tables":
		experiments.Table1(o)
		experiments.Table2(o)
		f5, err := experiments.Figure5(experiments.Options{Nodes: nodes, Rounds: rounds, Seed: seed}, nil, nil)
		if err != nil {
			return err
		}
		t3 := experiments.Table3(o, f5)
		f6, err := experiments.Figure6(experiments.Options{Nodes: nodes, Rounds: rounds, Seed: seed}, nil, nil)
		if err != nil {
			return err
		}
		t4 := experiments.Table4(o, f6)
		experiments.SummaryHeadline(o, t3, t4)
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
}

func runSingle(algo, ds string, nodes, degree, rounds, gt, gs int, lr float64, batch, steps int, seed uint64, evalInt int) error {
	g, err := graph.Regular(nodes, degree, seed)
	if err != nil {
		return err
	}
	w := graph.Metropolis(g)

	var part dataset.Partition
	var test *dataset.Dataset
	var classes int
	var workload energy.Workload
	var fraction float64
	var paperRounds int
	switch ds {
	case "cifar":
		cfg := dataset.SyntheticConfig{Classes: 10, Dim: 32, Train: nodes * 40, Test: 640, Noise: 2.5, Seed: seed}
		train, testAll, err := dataset.Generate(cfg)
		if err != nil {
			return err
		}
		part, err = dataset.ShardPartition(train, nodes, 2, seed)
		if err != nil {
			return err
		}
		_, test = testAll.Split(testAll.Len() / 2)
		classes, workload, fraction, paperRounds = 10, energy.CIFAR10Workload(), 0.10, experiments.PaperRoundsCIFAR
	case "femnist":
		cfg := dataset.FEMNISTWriters(seed)
		cfg.Writers = nodes + nodes/4
		cfg.Noise = 2.5
		writers, testAll, err := dataset.GenerateWriters(cfg)
		if err != nil {
			return err
		}
		part, err = dataset.WriterPartition(writers, nodes)
		if err != nil {
			return err
		}
		_, test = testAll.Split(testAll.Len() / 2)
		classes, workload, fraction, paperRounds = 62, energy.FEMNISTWorkload(), 0.50, experiments.PaperRoundsFEMNIST
	default:
		return fmt.Errorf("unknown dataset %q", ds)
	}

	gamma := core.Gamma{GammaTrain: 4, GammaSync: 4}
	switch degree {
	case 8:
		gamma = core.Gamma{GammaTrain: 3, GammaSync: 3}
	case 10:
		gamma = core.Gamma{GammaTrain: 4, GammaSync: 2}
	}
	if gt > 0 {
		gamma.GammaTrain = gt
	}
	if gs >= 0 {
		gamma.GammaSync = gs
	}

	budgets := func() *energy.Budget {
		assigned := energy.AssignDevices(nodes, energy.Devices())
		taus := make([]int, nodes)
		for i, d := range assigned {
			tau := d.RoundBudget(workload, fraction) * rounds / paperRounds
			if tau < 1 {
				tau = 1
			}
			taus[i] = tau
		}
		return energy.NewBudget(taus)
	}

	var a core.Algorithm
	switch algo {
	case "dpsgd":
		a = core.DPSGD()
	case "skiptrain":
		a = core.SkipTrain(gamma)
	case "constrained":
		a = core.SkipTrainConstrained(gamma, rounds, budgets(), nodes)
	case "greedy":
		a = core.Greedy(budgets())
	case "allreduce":
		a = core.AllReduce()
	case "async", "async-skiptrain":
		inner := core.DPSGD()
		if algo == "async-skiptrain" {
			inner = core.SkipTrain(gamma)
		}
		return runAsync(inner, ds, g, part, test, classes, workload, rounds, lr, batch, steps, seed)
	default:
		return fmt.Errorf("unknown algorithm %q", algo)
	}

	cfg := sim.Config{
		Graph: g, Weights: w,
		Algo:   a,
		Rounds: rounds,
		ModelFactory: func(node int, r *rng.RNG) *nn.Network {
			return nn.LogisticRegression(32, classes, r)
		},
		LR: lr, BatchSize: batch, LocalSteps: steps,
		Partition: part, Test: test,
		EvalEvery: evalInt, EvalSubsample: 320,
		EvalGlobalModel: algo == "allreduce",
		Devices:         energy.AssignDevices(nodes, energy.Devices()),
		Workload:        workload,
		Seed:            seed,
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return err
	}

	fmt.Printf("%s on %s-like data: %d nodes, %d-regular, %d rounds\n",
		a.Label, ds, nodes, degree, rounds)
	tb := report.NewTable("", "round", "kind", "trained", "mean acc %", "std %", "cum train Wh", "cum comm Wh")
	for _, m := range res.Evaluations() {
		tb.AddRowf("%d|%s|%d|%.2f|%.2f|%.4f|%.5f",
			m.Round+1, m.Kind, m.TrainedCount, m.MeanAcc*100, m.StdAcc*100, m.CumTrainWh, m.CumCommWh)
	}
	tb.Render(os.Stdout)
	var curve []float64
	for _, m := range res.Evaluations() {
		curve = append(curve, m.MeanAcc)
	}
	fmt.Printf("accuracy trend: %s\n", report.Sparkline(curve))
	fmt.Printf("final: %.2f%% ± %.2f | train %.4f Wh, comm %.5f Wh (sim scale)\n",
		res.FinalMeanAcc*100, res.FinalStdAcc*100, res.TotalTrainWh, res.TotalCommWh)
	return nil
}

// runAsync executes the experiment on the asynchronous engine (the paper's
// Section 5.3 future-work extension): rounds are reinterpreted as the
// per-node step budget, and the horizon is sized so the slowest device can
// finish them.
func runAsync(a core.Algorithm, ds string, g *graph.Graph, part dataset.Partition,
	test *dataset.Dataset, classes int, workload energy.Workload,
	rounds int, lr float64, batch, steps int, seed uint64) error {
	devices := energy.AssignDevices(g.N, energy.Devices())
	slowest := 0.0
	for _, d := range devices {
		if s := d.TrainRoundSeconds(workload); s > slowest {
			slowest = s
		}
	}
	res, err := async.Run(async.Config{
		Graph:        g,
		Algo:         a,
		Horizon:      slowest * float64(rounds) * 1.2,
		StepsPerNode: rounds,
		ModelFactory: func(node int, r *rng.RNG) *nn.Network {
			return nn.LogisticRegression(32, classes, r)
		},
		LR: lr, BatchSize: batch, LocalSteps: steps,
		Partition: part, Test: test,
		Devices: devices, Workload: workload,
		EvalEverySeconds: slowest * float64(rounds) / 8,
		EvalSubsample:    320,
		Seed:             seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("asynchronous %s on %s-like data: %d nodes, virtual horizon %.0fs\n",
		a.Label, ds, g.N, slowest*float64(rounds)*1.2)
	tb := report.NewTable("", "virtual time s", "mean acc %", "std %", "steps", "train Wh")
	for _, s := range res.History {
		tb.AddRowf("%.0f|%.2f|%.2f|%d|%.4f",
			s.Time, s.MeanAcc*100, s.StdAcc*100, s.StepsTotal, s.TrainWh)
	}
	tb.Render(os.Stdout)
	fmt.Printf("final: %.2f%% ± %.2f | %d gossip messages | %.4f Wh\n",
		res.FinalMeanAcc*100, res.FinalStdAcc*100, res.GossipsSent, res.TotalTrainWh)
	return nil
}
