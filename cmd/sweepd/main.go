// Command sweepd is the long-running sweep service (internal/sweep): it
// serves the experiment grid workloads over TCP with every simulation
// cell content-addressed and memoized, so repeated or overlapping grid
// searches — from any number of gridsearch clients — recompute only what
// has never been computed before.
//
//	sweepd -addr :7600 -cache /var/tmp/sweep-cache -workers 8
//	gridsearch -server localhost:7600 -job degree -progress
//
// With -cache the cell store is tiered: an in-memory LRU in front of an
// atomic on-disk JSON store, so cached cells survive daemon restarts and
// are invalidated only by a config or git-revision change. Without -cache
// everything lives in memory.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/experiments"
	"repro/internal/par"
	"repro/internal/sweep"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7600", "listen address")
		cache   = flag.String("cache", "", "cell cache directory (empty = in-memory only)")
		mem     = flag.Int("mem", 4096, "in-memory LRU capacity in cells (0 = unbounded)")
		workers = flag.Int("workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "error: unexpected arguments %v\n", flag.Args())
		os.Exit(2)
	}

	var store sweep.Store = sweep.NewMemStore(*mem)
	if *cache != "" {
		disk, err := sweep.NewFileStore(*cache)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		store = sweep.Tiered(sweep.NewMemStore(*mem), disk)
	}

	srv, err := sweep.NewServer(*addr, store, par.NewPool(*workers))
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	experiments.RegisterSweepHandlers(srv)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "sweepd: shutting down")
		srv.Close()
	}()

	fmt.Printf("sweepd: serving on %s (cache %s, %d workers)\n",
		srv.Addr(), cacheDesc(*cache), par.NewPool(*workers).Workers())
	if err := srv.Serve(); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func cacheDesc(dir string) string {
	if dir == "" {
		return "in-memory"
	}
	return dir
}
