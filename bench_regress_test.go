// Regression gate over the committed bench snapshots: the cross-PR history
// in BENCH_*.json must stay clean under the same comparison obstool regress
// runs in CI, and a synthetic slowdown must trip it.
package repro_test

import (
	"os"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/analyze"
)

func readBench(t *testing.T, path string) obs.BenchFile {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	bf, err := obs.ReadBenchJSON(f)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return bf
}

// The committed snapshot sequence must pass the default gate at every
// step: PR 7's SoA engine improved ns/node-round, PR 8 and PR 9 added
// benchmarks without regressing the tracked ones, PR 10 added the sweep
// service benchmarks (warm-vs-cold and worker scaling).
func TestCommittedBenchSnapshotsPassGate(t *testing.T) {
	history := []string{"BENCH_6.json", "BENCH_7.json", "BENCH_8.json", "BENCH_9.json", "BENCH_10.json"}
	for i := 1; i < len(history); i++ {
		old := readBench(t, history[i-1])
		new := readBench(t, history[i])
		res := analyze.CompareBench(old, new, nil, 0.2)
		if res.Regressions != 0 {
			t.Fatalf("%s -> %s regresses: %+v", history[i-1], history[i], res.Deltas)
		}
		if len(res.Deltas) == 0 {
			t.Fatalf("%s -> %s shares no benchmarks — the gate is vacuous", history[i-1], history[i])
		}
	}
}

// A synthetic 2x slowdown of every shared benchmark must trip the gate —
// proving the CI regress step can actually fail.
func TestSyntheticRegressionTripsGate(t *testing.T) {
	old := readBench(t, "BENCH_7.json")
	slow := readBench(t, "BENCH_7.json")
	for i := range slow.Results {
		for k, v := range slow.Results[i].Metrics {
			slow.Results[i].Metrics[k] = 2 * v
		}
	}
	res := analyze.CompareBench(old, slow, nil, 0.2)
	if res.Regressions == 0 {
		t.Fatal("doubled timings passed the regression gate")
	}
}
