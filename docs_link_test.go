package repro

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links [text](target). Images and
// reference-style links are out of scope; the repo's docs use inline links
// only.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocsRelativeLinks fails on broken relative links in README.md and
// docs/: every non-URL target must exist on disk relative to the file that
// references it. The CI docs job runs this alongside go vet and gofmt.
func TestDocsRelativeLinks(t *testing.T) {
	files := []string{"README.md", "ROADMAP.md", "PAPER.md", "PAPERS.md", "CHANGES.md"}
	entries, err := filepath.Glob("docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, entries...)

	checked := 0
	for _, file := range files {
		data, err := os.ReadFile(file)
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		for _, match := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := match[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external; liveness is not this test's job
			}
			target, _, _ = strings.Cut(target, "#")
			if target == "" {
				continue // pure in-page anchor
			}
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken relative link %q (resolved %s)", file, match[1], resolved)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no relative links found; the link checker is not seeing the docs")
	}
}
