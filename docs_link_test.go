package repro

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links [text](target). Images and
// reference-style links are out of scope; the repo's docs use inline links
// only.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// mdHeading matches ATX headings, whose GitHub-style anchors the link
// checker validates fragments against.
var mdHeading = regexp.MustCompile(`(?m)^#{1,6}\s+(.+?)\s*$`)

// nonAnchorRune strips everything GitHub's anchor slugger drops: anything
// that is not a letter, digit, space, hyphen, or underscore.
var nonAnchorRune = regexp.MustCompile(`[^\p{L}\p{N} _-]`)

// headingAnchors returns the set of GitHub-style anchors for a markdown
// file: headings lowercased, punctuation stripped, spaces replaced with
// hyphens, duplicates suffixed -1, -2, ...
func headingAnchors(md string) map[string]bool {
	anchors := map[string]bool{}
	for _, match := range mdHeading.FindAllStringSubmatch(md, -1) {
		slug := strings.ToLower(match[1])
		slug = nonAnchorRune.ReplaceAllString(slug, "")
		slug = strings.ReplaceAll(slug, " ", "-")
		if !anchors[slug] {
			anchors[slug] = true
			continue
		}
		for n := 1; ; n++ {
			withSuffix := fmt.Sprintf("%s-%d", slug, n)
			if !anchors[withSuffix] {
				anchors[withSuffix] = true
				break
			}
		}
	}
	return anchors
}

// TestDocsRelativeLinks fails on broken relative links in README.md and
// docs/: every non-URL target must exist on disk relative to the file that
// references it, and every #fragment pointing at a markdown file (or at the
// same file) must name a real heading anchor there. The CI docs job runs
// this alongside go vet and gofmt.
func TestDocsRelativeLinks(t *testing.T) {
	files := []string{"README.md", "ROADMAP.md", "PAPER.md", "PAPERS.md", "CHANGES.md"}
	entries, err := filepath.Glob("docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, entries...)

	anchorsOf := func(path string) (map[string]bool, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return headingAnchors(string(data)), nil
	}

	checked, anchorsChecked := 0, 0
	for _, file := range files {
		data, err := os.ReadFile(file)
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		for _, match := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := match[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external; liveness is not this test's job
			}
			target, fragment, _ := strings.Cut(target, "#")
			resolved := file // pure in-page anchor: check against this file
			if target != "" {
				resolved = filepath.Join(filepath.Dir(file), target)
				if _, err := os.Stat(resolved); err != nil {
					t.Errorf("%s: broken relative link %q (resolved %s)", file, match[1], resolved)
					continue
				}
				checked++
			}
			if fragment == "" || !strings.HasSuffix(resolved, ".md") {
				continue
			}
			anchors, err := anchorsOf(resolved)
			if err != nil {
				t.Fatal(err)
			}
			if !anchors[fragment] {
				t.Errorf("%s: link %q points at missing anchor #%s in %s", file, match[1], fragment, resolved)
			}
			anchorsChecked++
		}
	}
	if checked == 0 {
		t.Fatal("no relative links found; the link checker is not seeing the docs")
	}
	if anchorsChecked == 0 {
		t.Fatal("no anchored links found; the anchor checker is not seeing the docs")
	}
}

func TestHeadingAnchors(t *testing.T) {
	md := "# Death, checkpoint, rejoin\n## Phase 0 — live-set snapshot (`harvest`, `graph`)\n## Dup\n## Dup\n"
	anchors := headingAnchors(md)
	for _, want := range []string{
		"death-checkpoint-rejoin",
		"phase-0--live-set-snapshot-harvest-graph",
		"dup",
		"dup-1",
	} {
		if !anchors[want] {
			t.Fatalf("anchor %q missing from %v", want, anchors)
		}
	}
}
