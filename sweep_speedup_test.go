package repro_test

import (
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/sweep"
)

// TestSweepWarmRerunAtLeast50xFaster pins the PR's perf acceptance
// criterion: a warm rerun of the full TableGammaHarvest against a
// populated cell store is at least 50x faster than the cold run that
// filled it. The warm run performs no simulation at all — 80 store hits
// and JSON decodes — so in practice the ratio is in the thousands; 50x
// leaves room for scheduler jitter on loaded CI machines.
func TestSweepWarmRerunAtLeast50xFaster(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid search (80 simulations) skipped in -short mode")
	}
	o := experiments.Options{Nodes: 16, Rounds: 20, Seed: 7}
	store := sweep.NewMemStore(0)

	o.Sweep = sweep.NewRunner(store, nil)
	start := time.Now()
	cold, err := experiments.TableGammaHarvest(o)
	if err != nil {
		t.Fatal(err)
	}
	coldDur := time.Since(start)
	if st := o.Sweep.Stats(); st.Misses != 80 {
		t.Fatalf("cold run stats %s", st)
	}

	o.Sweep = sweep.NewRunner(store, nil)
	start = time.Now()
	warm, err := experiments.TableGammaHarvest(o)
	if err != nil {
		t.Fatal(err)
	}
	warmDur := time.Since(start)
	if st := o.Sweep.Stats(); !st.AllHits() {
		t.Fatalf("warm run stats %s", st)
	}
	for i := range cold {
		if cold[i] != warm[i] {
			t.Fatalf("row %d differs warm vs cold:\n%+v\n%+v", i, warm[i], cold[i])
		}
	}
	if speedup := float64(coldDur) / float64(warmDur); speedup < 50 {
		t.Fatalf("warm rerun only %.1fx faster (cold %v, warm %v), want >= 50x", speedup, coldDur, warmDur)
	} else {
		t.Logf("warm rerun %.0fx faster (cold %v, warm %v)", speedup, coldDur, warmDur)
	}
}
