// Benchmarks regenerating every table and figure of the paper's evaluation
// section, plus ablations of the reproduction's design choices.
//
//	go test -bench=. -benchmem              # everything, laptop scale
//	go test -bench=Figure5 -benchscale 256  # closer to paper scale
//
// Each benchmark prints the reproduced rows/series on its first iteration
// (so `go test -bench=. | tee bench_output.txt` captures the artifacts) and
// reports headline reproduction metrics through b.ReportMetric.
package repro_test

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/async"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/harvest"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/tensor"
	"repro/internal/transport"
)

var benchScale = flag.Int("benchscale", 32, "nodes per benchmark experiment (paper: 256)")

// opts builds laptop-scale options for a bench; rounds scale mildly with
// the node count so bigger scales stay faithful.
func opts(rounds int) experiments.Options {
	return experiments.Options{
		Nodes:  *benchScale,
		Rounds: rounds,
		Seed:   42,
	}.Defaults()
}

// once prints only on the first benchmark iteration.
func once(i int, f func()) {
	if i == 0 {
		f()
	}
}

func BenchmarkTable1Hyperparameters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := opts(8)
		once(i, func() { o.Out = os.Stdout })
		experiments.Table1(o)
	}
}

func BenchmarkTable2EnergyTraces(b *testing.B) {
	var rows []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		o := opts(8)
		once(i, func() { o.Out = os.Stdout })
		rows = experiments.Table2(o)
	}
	// Reproduction metric: worst relative error of the CIFAR round budgets
	// against the published {272, 324, 681, 272}.
	want := []float64{272, 324, 681, 272}
	worst := 0.0
	for i, r := range rows {
		if d := abs(float64(r.CIFARRounds)-want[i]) / want[i]; d > worst {
			worst = d
		}
	}
	b.ReportMetric(worst, "budget-rel-err")
}

func BenchmarkFigure1AllReduceGap(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		o := opts(64)
		once(i, func() { o.Out = os.Stdout })
		res, err := experiments.Figure1(o)
		if err != nil {
			b.Fatal(err)
		}
		gap = res.FinalGap
	}
	b.ReportMetric(gap, "allreduce-gap-pp") // paper: ~ +10
}

func BenchmarkFigure2SchedulePatterns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := opts(8)
		once(i, func() { o.Out = os.Stdout })
		if err := experiments.Figure2(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3GridSearch(b *testing.B) {
	var res *experiments.Figure3Result
	for i := 0; i < b.N; i++ {
		o := opts(48)
		once(i, func() { o.Out = os.Stdout })
		var err error
		res, err = experiments.Figure3(o, []int{6, 8, 10})
		if err != nil {
			b.Fatal(err)
		}
	}
	// Reproduction metrics: the exact paper-scale energies of the corner
	// cells (Figure 3 right heatmap: 302 and 1208 Wh).
	b.ReportMetric(res.EnergyCell(1, 4), "energy-cheapest-Wh") // paper: 302
	b.ReportMetric(res.EnergyCell(4, 1), "energy-dearest-Wh")  // paper: 1208
}

func BenchmarkFigure4TrainSyncTradeoff(b *testing.B) {
	var res *experiments.Figure4Result
	for i := 0; i < b.N; i++ {
		o := opts(48)
		o.EvalSubsample = 160
		once(i, func() { o.Out = os.Stdout })
		var err error
		res, err = experiments.Figure4(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Paper: accuracy rises in sync rounds, falls in train rounds.
	b.ReportMetric(res.MeanDeltaIntoSync, "delta-sync-pp")
	b.ReportMetric(res.MeanDeltaIntoTrain, "delta-train-pp")
}

func BenchmarkFigure5SkipTrainVsDPSGD(b *testing.B) {
	var res *experiments.Figure5Result
	for i := 0; i < b.N; i++ {
		o := opts(48)
		once(i, func() { o.Out = os.Stdout })
		var err error
		res, err = experiments.Figure5(o, []int{6, 8, 10}, []string{"cifar", "femnist"})
		if err != nil {
			b.Fatal(err)
		}
	}
	d := res.Arm("D-PSGD", "cifar", 6)
	s := res.Arm("SkipTrain", "cifar", 6)
	b.ReportMetric(s.FinalAcc-d.FinalAcc, "cifar-gain-pp")          // paper: ~ +7.5
	b.ReportMetric(s.PaperEnergyWh/d.PaperEnergyWh, "energy-ratio") // paper: 0.5
	if df := res.Arm("D-PSGD", "femnist", 6); df != nil {
		sf := res.Arm("SkipTrain", "femnist", 6)
		b.ReportMetric(sf.FinalAcc-df.FinalAcc, "femnist-gain-pp") // paper: ~ +0.7
	}
}

func BenchmarkFigure6Constrained(b *testing.B) {
	var res *experiments.Figure6Result
	for i := 0; i < b.N; i++ {
		o := opts(48)
		once(i, func() { o.Out = os.Stdout })
		var err error
		res, err = experiments.Figure6(o, []int{6, 8, 10}, []string{"cifar"})
		if err != nil {
			b.Fatal(err)
		}
	}
	sc := res.Arm("SkipTrain-constrained", "cifar", 6)
	gr := res.Arm("Greedy", "cifar", 6)
	b.ReportMetric(sc.FinalAcc-gr.FinalAcc, "vs-greedy-pp") // paper: up to +9
}

func BenchmarkFigure7ClassDistributions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := opts(8)
		once(i, func() { o.Out = os.Stdout })
		if err := experiments.Figure7(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3UnconstrainedSummary(b *testing.B) {
	var rows []experiments.Table3Row
	for i := 0; i < b.N; i++ {
		o := opts(48)
		fig5, err := experiments.Figure5(o, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		once(i, func() { o.Out = os.Stdout })
		rows = experiments.Table3(o, fig5)
	}
	// The published 755.02 Wh (SkipTrain, CIFAR-10, 6-regular).
	for _, r := range rows {
		if r.Algo == "SkipTrain" && r.Dataset == "cifar" {
			b.ReportMetric(r.EnergyWh[6], "cifar-6reg-Wh")
		}
	}
}

func BenchmarkTable4ConstrainedSummary(b *testing.B) {
	var rows []experiments.Table4Row
	for i := 0; i < b.N; i++ {
		o := opts(48)
		fig6, err := experiments.Figure6(o, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		once(i, func() { o.Out = os.Stdout })
		rows = experiments.Table4(o, fig6)
	}
	for _, r := range rows {
		if r.Algo == "SkipTrain-constrained" && r.Dataset == "cifar" {
			b.ReportMetric(r.Acc[6], "constrained-acc-pct")
		}
	}
}

// --- Ablations of the reproduction's design choices ---

// benchWorld builds the shared ablation setting: a d-regular topology with
// CIFAR-like 2-shard data.
func benchWorld(b *testing.B, nodes, degree int, seed uint64) (*graph.Graph, *graph.Weights, dataset.Partition, *dataset.Dataset) {
	b.Helper()
	g, err := graph.Regular(nodes, degree, seed)
	if err != nil {
		b.Fatal(err)
	}
	cfg := dataset.SyntheticConfig{Classes: 10, Dim: 32, Train: nodes * 40, Test: 480, Noise: 2.5, Seed: seed}
	train, test, err := dataset.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	part, err := dataset.ShardPartition(train, nodes, 2, seed)
	if err != nil {
		b.Fatal(err)
	}
	return g, graph.Metropolis(g), part, test
}

func runBench(b *testing.B, g *graph.Graph, w *graph.Weights, part dataset.Partition,
	test *dataset.Dataset, algo core.Algorithm, rounds int, seed uint64) *sim.Result {
	b.Helper()
	res, err := sim.Run(sim.Config{
		Graph: g, Weights: w, Algo: algo, Rounds: rounds,
		ModelFactory: func(node int, r *rng.RNG) *nn.Network {
			return nn.LogisticRegression(32, 10, r)
		},
		LR: 0.2, BatchSize: 16, LocalSteps: 8,
		Partition: part, Test: test,
		EvalEvery: 0, EvalSubsample: 240,
		Seed: seed,
	})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAblationEqualEnergy compares D-PSGD run for T/2 rounds with
// SkipTrain(1,1) run for T rounds — identical training energy, so any
// accuracy difference is purely the value of the interleaved
// synchronization rounds.
func BenchmarkAblationEqualEnergy(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		g, w, part, test := benchWorld(b, *benchScale, 6, 42)
		half := runBench(b, g, w, part, test, core.DPSGD(), 32, 42)
		skip := runBench(b, g, w, part, test,
			core.SkipTrain(core.Gamma{GammaTrain: 1, GammaSync: 1}), 64, 42)
		gain = (skip.FinalMeanAcc - half.FinalMeanAcc) * 100
		once(i, func() {
			fmt.Printf("AblationEqualEnergy: D-PSGD(T/2)=%.2f%%  SkipTrain(1,1;T)=%.2f%%  gain=%+.2f pp\n",
				half.FinalMeanAcc*100, skip.FinalMeanAcc*100, gain)
		})
	}
	b.ReportMetric(gain, "sync-value-pp")
}

// BenchmarkAblationUncoordinated compares SkipTrain's coordinated sync
// blocks against uncoordinated skipping (every node independently trains
// with probability 1/2 each round) at equal expected energy.
func BenchmarkAblationUncoordinated(b *testing.B) {
	var diff float64
	for i := 0; i < b.N; i++ {
		g, w, part, test := benchWorld(b, *benchScale, 6, 43)
		const rounds = 64
		coord := runBench(b, g, w, part, test,
			core.SkipTrain(core.Gamma{GammaTrain: 2, GammaSync: 2}), rounds, 43)
		// Uncoordinated: all-train schedule; every node flips p=0.5 per round.
		budget := energy.NewBudget(repeat(rounds/2, *benchScale))
		policy := core.NewProbabilisticPolicy(core.Gamma{GammaTrain: 1, GammaSync: 0}, rounds, budget, *benchScale)
		uncoord := runBench(b, g, w, part, test,
			core.Algorithm{Label: "uncoordinated", Schedule: core.AllTrain{}, Policy: policy},
			rounds, 43)
		diff = (coord.FinalMeanAcc - uncoord.FinalMeanAcc) * 100
		once(i, func() {
			fmt.Printf("AblationUncoordinated: coordinated=%.2f%%  uncoordinated=%.2f%%  diff=%+.2f pp\n",
				coord.FinalMeanAcc*100, uncoord.FinalMeanAcc*100, diff)
		})
	}
	b.ReportMetric(diff, "coordination-pp")
}

// BenchmarkAblationMixingMatrix compares Metropolis-Hastings weights with
// plain uniform neighborhood averaging on an irregular topology, where
// uniform averaging loses double stochasticity and with it the guarantee
// that the consensus model equals the true average.
func BenchmarkAblationMixingMatrix(b *testing.B) {
	var diff float64
	for i := 0; i < b.N; i++ {
		nodes := *benchScale
		g, err := graph.Regular(nodes, 4, 44)
		if err != nil {
			b.Fatal(err)
		}
		// Make it irregular: connect node 0 to every fourth node.
		for j := 2; j < nodes; j += 4 {
			if !g.HasEdge(0, j) {
				g.Adj[0] = append(g.Adj[0], j)
				g.Adj[j] = append(g.Adj[j], 0)
			}
		}
		cfg := dataset.SyntheticConfig{Classes: 10, Dim: 32, Train: nodes * 40, Test: 480, Noise: 2.5, Seed: 44}
		train, test, err := dataset.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		part, err := dataset.ShardPartition(train, nodes, 2, 44)
		if err != nil {
			b.Fatal(err)
		}
		algo := core.SkipTrain(core.Gamma{GammaTrain: 2, GammaSync: 2})
		mh := runBench(b, g, graph.Metropolis(g), part, test, algo, 48, 44)
		un := runBench(b, g, graph.Uniform(g), part, test, algo, 48, 44)
		diff = (mh.FinalMeanAcc - un.FinalMeanAcc) * 100
		once(i, func() {
			fmt.Printf("AblationMixingMatrix (irregular graph): MH=%.2f%%  uniform=%.2f%%  diff=%+.2f pp\n",
				mh.FinalMeanAcc*100, un.FinalMeanAcc*100, diff)
		})
	}
	b.ReportMetric(diff, "mh-vs-uniform-pp")
}

// BenchmarkAblationSpectralGap relates topology density to mixing speed and
// accuracy (Section 4.3's intuition).
func BenchmarkAblationSpectralGap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		printIt := i == 0
		for _, deg := range []int{2, 6, 10} {
			var g *graph.Graph
			var err error
			if deg == 2 {
				g, err = graph.Ring(*benchScale)
			} else {
				g, err = graph.Regular(*benchScale, deg, 45)
			}
			if err != nil {
				b.Fatal(err)
			}
			w := graph.Metropolis(g)
			gap := w.SpectralGap(g, 300, 45)
			cfg := dataset.SyntheticConfig{Classes: 10, Dim: 32, Train: *benchScale * 40, Test: 480, Noise: 2.5, Seed: 45}
			train, test, err := dataset.Generate(cfg)
			if err != nil {
				b.Fatal(err)
			}
			part, err := dataset.ShardPartition(train, *benchScale, 2, 45)
			if err != nil {
				b.Fatal(err)
			}
			res := runBench(b, g, w, part, test,
				core.SkipTrain(core.Gamma{GammaTrain: 2, GammaSync: 2}), 48, 45)
			if printIt {
				fmt.Printf("AblationSpectralGap: d=%-2d gap=%.4f acc=%.2f%%\n", deg, gap, res.FinalMeanAcc*100)
			}
		}
	}
}

// BenchmarkTransportLocal measures a full engine round over the channel
// transport.
func BenchmarkTransportLocal(b *testing.B) {
	g, w, part, test := benchWorld(b, 16, 4, 46)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runBench(b, g, w, part, test, core.DPSGD(), 4, 46)
	}
}

// BenchmarkTransportTCP measures the same engine rounds over real TCP.
func BenchmarkTransportTCP(b *testing.B) {
	g, w, part, test := benchWorld(b, 16, 4, 46)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		net, err := transport.NewTCP(16, "127.0.0.1", 64)
		if err != nil {
			b.Skip("no localhost sockets")
		}
		b.StartTimer()
		res, err := sim.Run(sim.Config{
			Graph: g, Weights: w, Algo: core.DPSGD(), Rounds: 4,
			ModelFactory: func(node int, r *rng.RNG) *nn.Network {
				return nn.LogisticRegression(32, 10, r)
			},
			LR: 0.2, BatchSize: 16, LocalSteps: 8,
			Partition: part, Test: test,
			EvalEvery: 0, EvalSubsample: 240,
			Network: net, Seed: 46,
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
		b.StopTimer()
		net.Close()
		b.StartTimer()
	}
}

// BenchmarkConsensusContraction measures pure synchronization rounds: the
// speed at which consensus distance contracts under W (no training).
func BenchmarkConsensusContraction(b *testing.B) {
	g, w, part, test := benchWorld(b, *benchScale, 6, 47)
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.Config{
			Graph: g, Weights: w,
			Algo:   core.Greedy(energy.NewBudget(make([]int, *benchScale))),
			Rounds: 16,
			ModelFactory: func(node int, r *rng.RNG) *nn.Network {
				return nn.LogisticRegression(32, 10, r)
			},
			LR: 0.2, BatchSize: 16, LocalSteps: 8,
			Partition: part, Test: test,
			EvalEvery: 1, EvalSubsample: 120,
			TrackConsensus: true, EvalGlobalModel: true,
			Seed: 47,
		})
		if err != nil {
			b.Fatal(err)
		}
		ev := res.Evaluations()
		first, last := ev[0].Consensus, ev[len(ev)-1].Consensus
		if first > 0 {
			ratio = last / first
		}
	}
	b.ReportMetric(ratio, "consensus-shrink")
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func repeat(v, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// Sanity: the metrics package is exercised at the root level too.
func BenchmarkMovingAverage(b *testing.B) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i % 17)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		metrics.MovingAverage(xs, 9)
	}
}

// BenchmarkAblationCompressedGossip compares consensus contraction under
// exact gossip vs top-k sparsified gossip with error feedback (the
// communication-reduction direction of the paper's related work). It
// reports the consensus-distance ratio after 50 mixing rounds: exact
// gossip contracts geometrically, while naively compressed gossip stalls
// at a noise floor (the reason CHOCO-style compressed consensus adds a
// damped mixing step) — at a quarter of the bandwidth.
func BenchmarkAblationCompressedGossip(b *testing.B) {
	var exactRatio, compressedRatio float64
	for it := 0; it < b.N; it++ {
		const n, dim, rounds = 32, 256, 50
		g, err := graph.Regular(n, 4, 48)
		if err != nil {
			b.Fatal(err)
		}
		w := graph.Metropolis(g)
		run := func(k int) float64 {
			r := rng.New(48)
			vecs := make([]tensor.Vector, n)
			for i := range vecs {
				vecs[i] = tensor.NewVector(dim)
				for j := range vecs[i] {
					vecs[i][j] = r.NormFloat64()
				}
			}
			efs := make([]*compress.ErrorFeedback, n)
			for i := range efs {
				efs[i] = compress.NewErrorFeedback(dim)
			}
			initial := metrics.ConsensusDistance(vecs)
			for round := 0; round < rounds; round++ {
				// Each node broadcasts a (possibly compressed) snapshot and
				// applies the W-weighted average of what it received.
				shared := make([]tensor.Vector, n)
				for i := range vecs {
					if k <= 0 || k >= dim {
						shared[i] = vecs[i].Clone()
					} else {
						shared[i] = efs[i].Compress(vecs[i], k).Dense()
					}
				}
				next := make([]tensor.Vector, n)
				for i := range vecs {
					acc := tensor.NewVector(dim)
					tensor.AXPY(acc, w.Self[i], shared[i])
					for kk, j := range g.Adj[i] {
						tensor.AXPY(acc, w.Nbr[i][kk], shared[j])
					}
					next[i] = acc
				}
				vecs = next
			}
			return metrics.ConsensusDistance(vecs) / initial
		}
		exactRatio = run(0)
		compressedRatio = run(dim / 4) // keep 25% of coordinates
		once(it, func() {
			fmt.Printf("AblationCompressedGossip: consensus ratio after 50 rounds: exact=%.2e, top-25%%+EF=%.2e\n",
				exactRatio, compressedRatio)
		})
	}
	b.ReportMetric(exactRatio, "exact-ratio")
	b.ReportMetric(compressedRatio, "topk-ratio")
}

// BenchmarkGammaGrid measures the harvest-aware Γ-schedule grid search of
// TableGammaHarvest: one regime's 4x4 grid, every cell a fresh-fleet
// harvest-coupled simulation, cells fanned out across GOMAXPROCS workers
// (internal/par). BenchmarkGammaGridSerial pins the GOMAXPROCS=1 baseline
// so the parallel speedup is tracked release over release; both produce
// bit-identical grids (cells write preallocated slots).
func BenchmarkGammaGrid(b *testing.B)       { benchGammaGrid(b, 0) }
func BenchmarkGammaGridSerial(b *testing.B) { benchGammaGrid(b, 1) }

func benchGammaGrid(b *testing.B, procs int) {
	if procs > 0 {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
	}
	o := experiments.Options{Nodes: *benchScale, Rounds: 32, Seed: 42}
	regime := experiments.GammaGridRegimes(o)[1] // diurnal-lo
	var res *experiments.GammaGridResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunGammaGrid(o, regime)
		if err != nil {
			b.Fatal(err)
		}
		once(i, func() { res.Render(os.Stdout) })
	}
	b.ReportMetric(res.Best.FinalAcc, "best-acc-pct")
	b.ReportMetric(float64(res.Best.GammaTrain*10+res.Best.GammaSync), "best-gamma-ts")
}

// BenchmarkSweepWarmVsCold measures the memoized sweep service's value on
// its headline workload: the full TableGammaHarvest (5 regimes x 16
// cells). Every iteration runs the search cold against an empty cell
// store and again warm against the store the cold run just filled, and
// reports both phases plus the warm speedup — the factor the
// content-addressed cache buys on an unchanged config. The warm phase
// recomputes nothing (80/80 hits); its cost is store lookups and JSON
// decodes.
func BenchmarkSweepWarmVsCold(b *testing.B) {
	o := opts(16)
	var coldNs, warmNs int64
	for i := 0; i < b.N; i++ {
		store := sweep.NewMemStore(0)

		o.Sweep = sweep.NewRunner(store, nil)
		start := time.Now()
		rows, err := experiments.TableGammaHarvest(o)
		if err != nil {
			b.Fatal(err)
		}
		coldNs += time.Since(start).Nanoseconds()
		if st := o.Sweep.Stats(); st.Hits != 0 {
			b.Fatalf("cold phase hit the cache: %s", st)
		}

		o.Sweep = sweep.NewRunner(store, nil)
		start = time.Now()
		warm, err := experiments.TableGammaHarvest(o)
		if err != nil {
			b.Fatal(err)
		}
		warmNs += time.Since(start).Nanoseconds()
		if st := o.Sweep.Stats(); !st.AllHits() {
			b.Fatalf("warm phase recomputed: %s", st)
		}
		for j := range rows {
			if rows[j] != warm[j] {
				b.Fatalf("row %d differs warm vs cold", j)
			}
		}
	}
	// No first-iteration print here: this benchmark is in the obstool
	// snapshot set, and stdout emitted mid-benchmark would split the result
	// line `obstool bench` parses. The metrics below carry the story.
	b.ReportMetric(float64(coldNs)/float64(b.N)/1e6, "cold-ms")
	b.ReportMetric(float64(warmNs)/float64(b.N)/1e6, "warm-ms")
	b.ReportMetric(float64(coldNs)/float64(warmNs), "warm-speedup")
}

// BenchmarkSweepColdWorkers pins the sweep scheduler's worker scaling on
// one cold 4x4 grid (diurnal-lo): the same simulations fanned over pools
// of 1, 2, and 4 workers. Grids are bit-identical at every width; only
// wall clock moves.
func BenchmarkSweepColdWorkers1(b *testing.B) { benchSweepCold(b, 1) }
func BenchmarkSweepColdWorkers2(b *testing.B) { benchSweepCold(b, 2) }
func BenchmarkSweepColdWorkers4(b *testing.B) { benchSweepCold(b, 4) }

func benchSweepCold(b *testing.B, workers int) {
	o := opts(16)
	regime := experiments.GammaGridRegimes(o)[1] // diurnal-lo
	for i := 0; i < b.N; i++ {
		o.Sweep = sweep.NewRunner(sweep.NewMemStore(0), par.NewPool(workers))
		res, err := experiments.RunGammaGrid(o, regime)
		if err != nil {
			b.Fatal(err)
		}
		if st := o.Sweep.Stats(); st.Misses != 16 {
			b.Fatalf("cold grid stats %s", st)
		}
		_ = res
	}
	b.ReportMetric(float64(workers), "workers")
}

// BenchmarkSection51Fairness quantifies the Section 5.1 bias discussion:
// participation inequality (Gini) and budget-accuracy correlation of
// SkipTrain-constrained vs energy-oblivious D-PSGD.
func BenchmarkSection51Fairness(b *testing.B) {
	var res *experiments.Section51Result
	for i := 0; i < b.N; i++ {
		o := opts(48)
		once(i, func() { o.Out = os.Stdout })
		var err error
		res, err = experiments.Section51Fairness(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Constrained.ParticipationGini, "gini")
	b.ReportMetric(res.Constrained.BudgetAccCorr, "budget-acc-corr")
}

// BenchmarkHarvestFleetRound measures the per-round battery-update hot path
// of the harvesting subsystem at scale: 1k nodes stepping through 1k rounds
// of TryTrain + EndRound (diurnal trace) per iteration. This is the loop a
// million-device deployment would shard, so its ns/node-round and allocation
// profile anchor the perf trajectory. The fleet is built once and rewound
// with Fleet.Reset per iteration — the cheap fresh-state path the grid
// searches rely on — so construction noise stays out of the measurement.
func BenchmarkHarvestFleetRound(b *testing.B) {
	const (
		nodes  = 1000
		rounds = 1000
	)
	devices := energy.AssignDevices(nodes, energy.Devices())
	w := energy.CIFAR10Workload()
	trace, err := harvest.NewDiurnal(0.01, 24, harvest.LongitudePhase(nodes))
	if err != nil {
		b.Fatal(err)
	}
	fleet, err := harvest.NewFleet(devices, w, trace, harvest.Options{CapacityRounds: 12, InitialSoC: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fleet.Reset(); err != nil {
			b.Fatal(err)
		}
		for t := 0; t < rounds; t++ {
			for node := 0; node < nodes; node++ {
				if fleet.SoC(node) > 0.2 {
					fleet.TryTrain(node)
				}
			}
			fleet.EndRound(t)
		}
		if fleet.HarvestedWh() <= 0 {
			b.Fatal("fleet harvested nothing")
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*nodes*rounds), "ns/node-round")
}

// BenchmarkSoAFleetRound measures the struct-of-arrays engine on the exact
// scenario of BenchmarkHarvestFleetRound — 1k nodes, 1k rounds, diurnal
// trace, train-above-0.2-SoC policy — driven through the fused
// SweepThreshold: the participation decision, battery update, harvest, and
// liveness count in one pass per node, with the diurnal row served from
// the day-row cache.
// The headline node-rounds/s against BenchmarkHarvestFleetRound's is the
// ROADMAP million-node-engine metric (target: ≥5× the pointer fleet,
// ≥10M node-rounds/s).
func BenchmarkSoAFleetRound(b *testing.B) {
	const (
		nodes  = 1000
		rounds = 1000
	)
	devices := energy.AssignDevices(nodes, energy.Devices())
	w := energy.CIFAR10Workload()
	trace, err := harvest.NewDiurnal(0.01, 24, harvest.LongitudePhase(nodes))
	if err != nil {
		b.Fatal(err)
	}
	fleet, err := harvest.NewSoAFleet(devices, w, trace, harvest.Options{CapacityRounds: 12, InitialSoC: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fleet.Reset(); err != nil {
			b.Fatal(err)
		}
		for t := 0; t < rounds; t++ {
			fleet.SweepThreshold(t, 0.2)
		}
		if fleet.HarvestedWh() <= 0 {
			b.Fatal("fleet harvested nothing")
		}
	}
	perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N*nodes*rounds)
	b.ReportMetric(perOp, "ns/node-round")
	b.ReportMetric(1e3/perOp, "Mnode-rounds/s")
}

// BenchmarkHorizonPlan measures the MPC planning hot path at fleet scale:
// 1k nodes each solving the greedy knapsack over a 96-round forecast
// window (an oracle window fill plus the survival-checked forward plan)
// per iteration — the per-round planning cost a forecast-aware deployment
// adds on top of the battery update. Plan is read-only on the battery, so
// every iteration solves the identical problem.
func BenchmarkHorizonPlan(b *testing.B) {
	const (
		nodes  = 1000
		window = 96
	)
	devices := energy.AssignDevices(nodes, energy.Devices())
	w := energy.CIFAR10Workload()
	mean := energy.NetworkRoundWh(nodes, energy.Devices(), w) / float64(nodes)
	trace, err := harvest.NewDiurnal(1.2*mean, 24, harvest.LongitudePhase(nodes))
	if err != nil {
		b.Fatal(err)
	}
	fleet, err := harvest.NewFleet(devices, w, trace, harvest.Options{
		CapacityRounds: 12, InitialSoC: 0.6, CutoffSoC: 0.2, IdleWh: 0.1 * mean,
	})
	if err != nil {
		b.Fatal(err)
	}
	oracle, err := harvest.NewOracle(trace)
	if err != nil {
		b.Fatal(err)
	}
	policy, err := harvest.NewHorizonPlan(0.05)
	if err != nil {
		b.Fatal(err)
	}
	forecast := make([]float64, window)
	planned := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for node := 0; node < nodes; node++ {
			oracle.Forecast(node, 0, forecast)
			ctx := fleet.Context(0)
			ctx.Forecast = forecast
			plan := policy.Plan(node, ctx)
			for _, train := range plan {
				if train {
					planned++
				}
			}
		}
	}
	b.StopTimer()
	if planned == 0 {
		b.Fatal("planner never scheduled a training round")
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*nodes), "ns/plan")
}

// BenchmarkHarvestFleetRoundParallel measures the same hot path with the
// policy loop fanned out across GOMAXPROCS workers (the engine's phase
// pattern) and EndRound sharding internally — the million-node
// configuration of the ROADMAP perf item. Results are bit-identical to the
// serial benchmark because all fleet state is per-node.
func BenchmarkHarvestFleetRoundParallel(b *testing.B) {
	const (
		nodes  = 1000
		rounds = 1000
	)
	devices := energy.AssignDevices(nodes, energy.Devices())
	w := energy.CIFAR10Workload()
	workers := runtime.GOMAXPROCS(0)
	trace, err := harvest.NewDiurnal(0.01, 24, harvest.LongitudePhase(nodes))
	if err != nil {
		b.Fatal(err)
	}
	fleet, err := harvest.NewFleet(devices, w, trace, harvest.Options{CapacityRounds: 12, InitialSoC: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fleet.Reset(); err != nil {
			b.Fatal(err)
		}
		chunk := (nodes + workers - 1) / workers
		for t := 0; t < rounds; t++ {
			var wg sync.WaitGroup
			for lo := 0; lo < nodes; lo += chunk {
				hi := lo + chunk
				if hi > nodes {
					hi = nodes
				}
				wg.Add(1)
				go func(lo, hi int) {
					defer wg.Done()
					for node := lo; node < hi; node++ {
						if fleet.SoC(node) > 0.2 {
							fleet.TryTrain(node)
						}
					}
				}(lo, hi)
			}
			wg.Wait()
			fleet.EndRound(t)
		}
		if fleet.HarvestedWh() <= 0 {
			b.Fatal("fleet harvested nothing")
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*nodes*rounds), "ns/node-round")
}

// BenchmarkAsyncHarvestEventLoop measures the event-driven intermittency
// engine end to end: a 64-node fleet on a scarce diurnal trace, every
// local step an admission check plus a continuous battery integration,
// sleeping nodes woken at solved charge-arrival crossings, and in-flight
// steps interrupted at exact cutoff crossings. LocalSteps 1 on a small
// model keeps SGD cheap, so the heap, crossing solvers, and per-segment
// trace integration dominate — the cost the refactor added over the
// budget-contract step clock.
func BenchmarkAsyncHarvestEventLoop(b *testing.B) {
	const nodes = 64
	g, err := graph.Regular(nodes, 6, 42)
	if err != nil {
		b.Fatal(err)
	}
	data := dataset.SyntheticConfig{Classes: 10, Dim: 16, Train: nodes * 24, Test: 240, Noise: 2.5, Seed: 42}
	train, testAll, err := dataset.Generate(data)
	if err != nil {
		b.Fatal(err)
	}
	part, err := dataset.ShardPartition(train, nodes, 2, 42)
	if err != nil {
		b.Fatal(err)
	}
	devices := energy.AssignDevices(nodes, energy.Devices())
	w := energy.CIFAR10Workload()
	mean := energy.NetworkRoundWh(nodes, energy.Devices(), w) / float64(nodes)
	stepSec := 0.0
	for _, d := range devices {
		stepSec += d.TrainRoundSeconds(w)
	}
	stepSec /= nodes
	const traceRounds = 96
	steps := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trace, err := harvest.NewDiurnal(1.2*mean, 24, harvest.LongitudePhase(nodes))
		if err != nil {
			b.Fatal(err)
		}
		policy, err := harvest.NewSoCThreshold(0.2)
		if err != nil {
			b.Fatal(err)
		}
		res, err := async.Run(async.Config{
			Graph:        g,
			Algo:         core.Algorithm{Label: "bench", Schedule: core.AllTrain{}, Policy: policy},
			Horizon:      traceRounds * stepSec,
			ModelFactory: func(node int, r *rng.RNG) *nn.Network { return nn.LogisticRegression(16, 10, r) },
			LR:           0.2, BatchSize: 8, LocalSteps: 1,
			Partition: part, Test: testAll,
			Devices: devices, Workload: w,
			Trace: trace,
			FleetOptions: harvest.Options{
				CapacityRounds: 8, InitialSoC: 0.3, CutoffSoC: 0.1, IdleWh: 0.2 * mean,
			},
			RoundSeconds: stepSec,
			Seed:         42,
		})
		if err != nil {
			b.Fatal(err)
		}
		steps = 0
		for _, s := range res.StepsPerNode {
			steps += s
		}
		if steps == 0 || res.Brownouts == 0 {
			b.Fatalf("event loop idle: %d steps, %d brown-outs", steps, res.Brownouts)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*steps), "ns/step")
}
